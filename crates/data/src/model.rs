//! The trained-model artifact: everything `hics fit` learns, in one
//! zero-dependency binary file that `hics score` / `hics serve` reload.
//!
//! HiCS decouples subspace search from outlier ranking; the search result —
//! the high-contrast subspace set — is a *model* that can score new query
//! points without re-running the search (cf. outlying-aspect mining and
//! subspace-ensemble methods, which likewise treat the mined subspace set as
//! a reusable artifact). [`HicsModel`] bundles:
//!
//! * the trained columns (the reference database, already normalised),
//! * the per-attribute normalisation transform, so raw query points map
//!   into the trained value space bit-for-bit,
//! * the per-attribute [`RankIndex`] argsort permutations,
//! * the selected subspaces with their contrast scores,
//! * the scorer configuration (scorer kind, `k`, aggregation).
//!
//! # On-disk format (versions 1 and 2)
//!
//! Little-endian throughout. A fixed 72-byte header, then sections that each
//! begin on an 8-byte boundary from the start of the file, so a memory map
//! of the file yields naturally aligned `f64` / `u32` slices:
//!
//! ```text
//! offset  size  field
//!      0     8  magic "HICSMDL\0"
//!      8     4  format version (u32, 1 or 2)
//!     12     4  header length  (u32, = 72)
//!     16     8  n — objects    (u64)
//!     24     8  d — attributes (u64)
//!     32     8  subspace count (u64)
//!     40     4  scorer kind    (u32: 0 LOF, 1 kNN-mean, 2 kNN-kth)
//!     44     4  scorer k       (u32)
//!     48     4  aggregation    (u32: 0 average, 1 max)
//!     52     4  normalisation  (u32: 0 none, 1 min-max, 2 z-score)
//!     56     8  payload length (u64, bytes after the header)
//!     64     8  checksum       (u64, FNV-1a over bytes 0..64 and 72..end)
//! ----- sections, each padded to an 8-byte boundary -----
//!            names       d × (u32 len + utf-8 bytes)
//!            norm params d × (offset f64, divisor f64)
//!            columns     d × n × f64
//!            order       d × n × u32   (argsort permutations)
//!            sub lens    count × u32
//!            sub dims    Σ lens × u32  (flattened, ascending per subspace)
//!            contrasts   count × f64
//! ----- version 2 only: neighbor-index section -----
//!            index kind  u32 (1 = VP-tree) + u32 reserved
//!            per subspace:
//!              node count u32, ids length u32
//!              nodes      count × 32 B (vantage, inner, outer, start, len,
//!                         reserved — all u32 — then mu f64)
//!              ids        length × u32, zero-padded to 8 B
//! ```
//!
//! A model **without** a prebuilt index serialises as version 1 — exactly
//! the pre-index byte stream, so older readers keep working and new readers
//! fall back to the brute-force scan. A model carrying per-subspace VP-trees
//! serialises as version 2 with the index section appended.
//!
//! The inverse ranks of the [`RankIndex`] are not stored: they are rebuilt
//! from the order permutations in `O(D·N)` at load time (and validating the
//! permutations requires that pass anyway).
//!
//! The checksum covers every byte except its own field. Because each FNV-1a
//! step `h ← (h ⊕ b) · p` is injective in `h` (the prime is odd) and in `b`,
//! any single corrupted byte is guaranteed to change the checksum — so
//! bit-rot in a stored artifact is detected rather than silently shifting
//! scores.
//!
//! # Decoding paths
//!
//! All validation lives in one place, [`ArtifactLayout::parse`], which walks
//! the byte stream once and records where the bulk sections (columns, order
//! permutations) start. Two consumers share it:
//!
//! * [`HicsModel::from_bytes`] materialises everything into owned vectors —
//!   the heap-loading path.
//! * [`crate::artifact::ModelArtifact`] keeps the (typically memory-mapped)
//!   bytes and serves *borrowed* column views out of them — the zero-copy
//!   path. Because both run the identical parser, they accept and reject
//!   exactly the same byte streams.

use crate::dataset::Dataset;
use crate::error::{ArtifactSection, HicsError};
use crate::index::RankIndex;
use std::io::{Read, Write};
use std::path::Path;

/// Current (maximum) on-disk format version. Version 1 lacks the
/// neighbor-index section and is still written for models without one.
pub const FORMAT_VERSION: u32 = 2;

/// File magic, first eight bytes of every model artifact.
pub const MAGIC: [u8; 8] = *b"HICSMDL\0";

pub(crate) const HEADER_LEN: usize = 72;

/// FNV-1a offset basis (shared with the dataset-store format in
/// `hics-store`, which uses the same checksum scheme).
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// Continues an FNV-1a hash over `bytes`.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The artifact checksum: FNV-1a over the header (minus the checksum field
/// itself, bytes 64..72) and the payload. The dataset-store format
/// (`hics-store`) shares this exact scheme, so the single-byte-corruption
/// detection argument in the module docs covers both file kinds.
pub fn artifact_checksum(bytes: &[u8]) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &bytes[..64]), &bytes[HEADER_LEN..])
}

/// Pre-v2 name of the artifact error type. Every artifact failure is now a
/// [`HicsError`] (which adds section/offset context and exit-code mapping);
/// this alias keeps old spellings compiling.
#[deprecated(note = "use HicsError")]
pub type ModelError = HicsError;

/// Which density-based scorer the model was fit for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScorerKind {
    /// Local Outlier Factor (the paper's instantiation).
    #[default]
    Lof,
    /// Mean distance to the k nearest neighbours.
    KnnMean,
    /// Distance to the k-th nearest neighbour.
    KnnKth,
}

impl ScorerKind {
    fn code(self) -> u32 {
        match self {
            ScorerKind::Lof => 0,
            ScorerKind::KnnMean => 1,
            ScorerKind::KnnKth => 2,
        }
    }

    fn from_code(c: u32) -> Result<Self, String> {
        match c {
            0 => Ok(ScorerKind::Lof),
            1 => Ok(ScorerKind::KnnMean),
            2 => Ok(ScorerKind::KnnKth),
            other => Err(format!("unknown scorer kind {other}")),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScorerKind::Lof => "LOF",
            ScorerKind::KnnMean => "kNN-mean",
            ScorerKind::KnnKth => "kNN-kth",
        }
    }
}

/// The scorer configuration stored in the artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScorerSpec {
    /// The scorer family.
    pub kind: ScorerKind,
    /// Neighbourhood size (`MinPts` for LOF, `k` for the kNN scores).
    pub k: u32,
}

impl Default for ScorerSpec {
    fn default() -> Self {
        Self {
            kind: ScorerKind::Lof,
            k: 10,
        }
    }
}

/// How per-subspace scores aggregate into one ranking (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationKind {
    /// Arithmetic mean over subspaces (the paper's choice).
    #[default]
    Average,
    /// Per-object maximum over subspaces.
    Max,
}

impl AggregationKind {
    fn code(self) -> u32 {
        match self {
            AggregationKind::Average => 0,
            AggregationKind::Max => 1,
        }
    }

    fn from_code(c: u32) -> Result<Self, String> {
        match c {
            0 => Ok(AggregationKind::Average),
            1 => Ok(AggregationKind::Max),
            other => Err(format!("unknown aggregation {other}")),
        }
    }
}

/// The normalisation applied to the training data at fit time (and to every
/// query point at score time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormKind {
    /// Raw values.
    #[default]
    None,
    /// Per-attribute min-max scaling to `[0, 1]`.
    MinMax,
    /// Per-attribute z-score standardisation.
    ZScore,
}

impl NormKind {
    fn code(self) -> u32 {
        match self {
            NormKind::None => 0,
            NormKind::MinMax => 1,
            NormKind::ZScore => 2,
        }
    }

    fn from_code(c: u32) -> Result<Self, String> {
        match c {
            0 => Ok(NormKind::None),
            1 => Ok(NormKind::MinMax),
            2 => Ok(NormKind::ZScore),
            other => Err(format!("unknown normalisation kind {other}")),
        }
    }

    /// Display name (CLI option spelling).
    pub fn name(self) -> &'static str {
        match self {
            NormKind::None => "none",
            NormKind::MinMax => "minmax",
            NormKind::ZScore => "zscore",
        }
    }
}

/// One attribute's affine normalisation `stored = (raw − offset) / divisor`.
///
/// A `divisor` of exactly `0.0` marks a constant training attribute: every
/// value (training or query) maps to `0.0`, matching
/// [`Dataset::normalize_min_max`] / [`Dataset::normalize_z_score`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormParam {
    /// Subtracted first (the attribute minimum or mean).
    pub offset: f64,
    /// Divided second (the attribute range or standard deviation).
    pub divisor: f64,
}

impl NormParam {
    /// The identity transform.
    pub const IDENTITY: NormParam = NormParam {
        offset: 0.0,
        divisor: 1.0,
    };

    /// Applies the transform to one raw value.
    #[inline]
    pub fn apply(&self, raw: f64) -> f64 {
        if self.divisor == 0.0 {
            0.0
        } else {
            (raw - self.offset) / self.divisor
        }
    }
}

/// Computes the per-attribute normalisation of `kind` for `data` and returns
/// the transformed dataset together with the parameters — the fit-time
/// counterpart of [`NormParam::apply`]. The arithmetic matches
/// [`Dataset::normalize_min_max`] / [`Dataset::normalize_z_score`]
/// expression-for-expression, so results are bit-identical.
pub fn apply_normalization(data: &Dataset, kind: NormKind) -> (Dataset, Vec<NormParam>) {
    let params: Vec<NormParam> = match kind {
        NormKind::None => vec![NormParam::IDENTITY; data.d()],
        NormKind::MinMax => data
            .ranges()
            .iter()
            .map(|&(lo, hi)| {
                let width = hi - lo;
                NormParam {
                    offset: lo,
                    divisor: if width > 0.0 { width } else { 0.0 },
                }
            })
            .collect(),
        NormKind::ZScore => data
            .columns()
            .iter()
            .map(|c| {
                let m = hics_stats::Moments::from_slice(c);
                let sd = m.population_variance().sqrt();
                NormParam {
                    offset: m.mean(),
                    divisor: if sd > 0.0 { sd } else { 0.0 },
                }
            })
            .collect(),
    };
    if kind == NormKind::None {
        return (data.clone(), params);
    }
    let cols = data
        .columns()
        .iter()
        .zip(&params)
        .map(|(c, p)| c.iter().map(|&v| p.apply(v)).collect())
        .collect();
    let names = data.names().to_vec();
    (Dataset::from_columns_named(cols, names), params)
}

/// One selected subspace with its Monte-Carlo contrast.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSubspace {
    /// Attribute indices, ascending.
    pub dims: Vec<usize>,
    /// The contrast estimate the search assigned it.
    pub contrast: f64,
}

/// Sentinel for "no node" / "no vantage" in [`VpNodeData`] links.
pub const VP_NONE: u32 = u32::MAX;

/// One VP-tree node in its plain-old-data on-disk form. Internal nodes
/// carry a vantage object and the median radius `mu` splitting the inner
/// ball (`d ≤ mu`) from the outer shell (`d ≥ mu`); leaves carry a range of
/// [`VpTreeData::ids`].
///
/// The data carrier lives in `hics-data` so the artifact can serialise
/// prebuilt trees; construction and querying live in `hics-outlier`, which
/// owns the distance kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpNodeData {
    /// Vantage object id ([`VP_NONE`] for leaves).
    pub vantage: u32,
    /// Node index of the inner-ball child ([`VP_NONE`] for leaves).
    pub inner: u32,
    /// Node index of the outer-shell child ([`VP_NONE`] for leaves).
    pub outer: u32,
    /// Leaf range start into [`VpTreeData::ids`] (0 for internal nodes).
    pub start: u32,
    /// Leaf range length (0 for internal nodes).
    pub len: u32,
    /// Median vantage distance of internal nodes (0 for leaves).
    pub mu: f64,
}

/// One subspace's VP-tree as flat arrays (node 0 is the root).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VpTreeData {
    /// Tree nodes in construction order.
    pub nodes: Vec<VpNodeData>,
    /// Object ids referenced by leaf ranges (vantages live in the nodes).
    pub ids: Vec<u32>,
}

/// The prebuilt neighbor-index payload of a version-2 artifact: one VP-tree
/// per model subspace, aligned with [`HicsModel::subspaces`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelIndex {
    /// Per-subspace trees, same order as the subspace section.
    pub trees: Vec<VpTreeData>,
}

/// Structural validation of one serialized VP-tree over `n` objects: every
/// link in range, no node visited twice, leaf ranges disjoint and exactly
/// covering `ids`, and every object appearing exactly once as a vantage or
/// leaf entry. Rejecting here means the query path can traverse without
/// bounds anxiety.
///
/// `subspace` and `offset` locate the tree for the error: the subspace it
/// belongs to and the byte offset its encoding starts at (`0` for trees
/// validated in memory, e.g. via [`HicsModel::set_index`]).
fn validate_tree(
    tree: &VpTreeData,
    n: usize,
    subspace: usize,
    offset: usize,
) -> Result<(), HicsError> {
    let fail = |msg: String| HicsError::InvalidModel {
        section: ArtifactSection::Index,
        offset,
        msg: format!("invalid VP-tree for subspace {subspace}: {msg}"),
    };
    if tree.nodes.is_empty() {
        return Err(fail("tree has no nodes".into()));
    }
    let mut visited = vec![false; tree.nodes.len()];
    let mut seen = vec![false; n];
    let mut covered_ids = 0usize;
    let mut stack = vec![0u32];
    while let Some(idx) = stack.pop() {
        let node = tree
            .nodes
            .get(idx as usize)
            .ok_or_else(|| fail(format!("node link {idx} out of range")))?;
        if std::mem::replace(&mut visited[idx as usize], true) {
            return Err(fail(format!("node {idx} reachable twice")));
        }
        if node.vantage == VP_NONE {
            // Leaf: a range of ids, no children, no radius.
            if node.inner != VP_NONE || node.outer != VP_NONE || node.mu != 0.0 {
                return Err(fail(format!("leaf node {idx} carries internal fields")));
            }
            let start = node.start as usize;
            let end = start + node.len as usize;
            if end > tree.ids.len() {
                return Err(fail(format!("leaf node {idx} range exceeds ids")));
            }
            for &id in &tree.ids[start..end] {
                if (id as usize) >= n || std::mem::replace(&mut seen[id as usize], true) {
                    return Err(fail(format!("leaf object id {id} invalid or duplicated")));
                }
            }
            covered_ids += node.len as usize;
        } else {
            if (node.vantage as usize) >= n
                || std::mem::replace(&mut seen[node.vantage as usize], true)
            {
                return Err(fail(format!(
                    "vantage id {} invalid or duplicated",
                    node.vantage
                )));
            }
            if !node.mu.is_finite() || node.mu < 0.0 {
                return Err(fail(format!("node {idx} has invalid radius {}", node.mu)));
            }
            if node.len != 0 {
                return Err(fail(format!("internal node {idx} carries a leaf range")));
            }
            if node.inner == VP_NONE || node.outer == VP_NONE {
                return Err(fail(format!("internal node {idx} is missing a child")));
            }
            stack.push(node.inner);
            stack.push(node.outer);
        }
    }
    if covered_ids != tree.ids.len() {
        return Err(fail(format!(
            "leaf ranges cover {covered_ids} of {} ids",
            tree.ids.len()
        )));
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(fail(format!("object {missing} missing from the tree")));
    }
    if visited.iter().any(|&v| !v) {
        return Err(fail("unreachable tree nodes".into()));
    }
    Ok(())
}

/// The fully validated decoding of one artifact byte stream: every small
/// section materialised, the two bulk sections (columns, order permutations)
/// located by byte offset so consumers can choose between copying them out
/// ([`HicsModel::from_bytes`]) and borrowing them in place
/// ([`crate::artifact::ModelArtifact`]).
///
/// `parse` performs **all** artifact validation: header sanity, payload
/// length, checksum, UTF-8 names, finite values, permutation checks,
/// subspace structure and VP-tree structure. Consumers never re-validate.
#[derive(Debug, Clone)]
pub(crate) struct ArtifactLayout {
    /// Decoded format version (1 or 2).
    pub version: u32,
    /// Object count.
    pub n: usize,
    /// Attribute count.
    pub d: usize,
    /// Scorer configuration.
    pub scorer: ScorerSpec,
    /// Score aggregation.
    pub aggregation: AggregationKind,
    /// Normalisation kind.
    pub norm_kind: NormKind,
    /// Attribute names (owned; the section is tiny).
    pub names: Vec<String>,
    /// Normalisation parameters (owned; the section is tiny).
    pub norm: Vec<NormParam>,
    /// Byte offset of the columns section (`d × n × f64`, 8-aligned).
    pub columns_offset: usize,
    /// Byte offset of the order section (`d × n × u32`).
    pub order_offset: usize,
    /// Selected subspaces with contrasts (owned; tiny).
    pub subspaces: Vec<ModelSubspace>,
    /// Prebuilt neighbor index of a version-2 stream.
    pub index: Option<ModelIndex>,
}

impl ArtifactLayout {
    /// Walks and validates one artifact byte stream. See the type docs.
    pub(crate) fn parse(bytes: &[u8]) -> Result<Self, HicsError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(HicsError::BadMagic);
        }
        let version = r.u32()?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(HicsError::UnsupportedVersion(version));
        }
        let header_len = r.u32()? as usize;
        if header_len != HEADER_LEN {
            return Err(r.invalid(format!("header length {header_len}, expected {HEADER_LEN}")));
        }
        let n = r.usize_field("object count")?;
        let d = r.usize_field("attribute count")?;
        let sub_count = r.usize_field("subspace count")?;
        let scorer_kind = ScorerKind::from_code(r.u32()?).map_err(|m| r.invalid(m))?;
        let scorer_k = r.u32()?;
        let aggregation = AggregationKind::from_code(r.u32()?).map_err(|m| r.invalid(m))?;
        let norm_kind = NormKind::from_code(r.u32()?).map_err(|m| r.invalid(m))?;
        let payload_len = r.u64()? as usize;
        let stored_checksum = r.u64()?;
        debug_assert_eq!(r.offset, HEADER_LEN);

        if n < 2 || d == 0 {
            // Every downstream consumer scores with kNN neighbourhoods,
            // which need at least two reference objects.
            return Err(r.invalid(format!(
                "model needs at least 2 objects and 1 attribute, got {n} x {d}"
            )));
        }
        if u32::try_from(n).is_err() {
            return Err(r.invalid(format!("object count {n} exceeds u32")));
        }
        if sub_count == 0 {
            return Err(r.invalid("model has no subspaces".into()));
        }
        if scorer_k == 0 {
            return Err(r.invalid("scorer k must be >= 1".into()));
        }
        if bytes.len() != HEADER_LEN + payload_len {
            return Err(HicsError::Truncated {
                section: ArtifactSection::Header,
                offset: HEADER_LEN,
                needed: payload_len,
                available: bytes.len().saturating_sub(HEADER_LEN),
            });
        }
        let computed = artifact_checksum(bytes);
        if computed != stored_checksum {
            return Err(HicsError::ChecksumMismatch {
                stored: stored_checksum,
                computed,
            });
        }
        // The counts come straight from the (attacker-suppliable) header;
        // cross-check them against what the payload could possibly hold
        // BEFORE sizing any allocation from them, or a crafted header makes
        // `Vec::with_capacity` panic or abort instead of returning an
        // error. Conservative floors: every attribute needs ≥ 4 (name
        // length) + 16 (norm params) bytes plus 12·n column/order bytes;
        // every subspace ≥ 4 + 4 + 8 (len + one dim + contrast); every
        // object ≥ 12 bytes per attribute.
        if d > bytes.len() / 20 {
            return Err(r.invalid(format!(
                "attribute count {d} exceeds what a {}-byte payload can hold",
                bytes.len()
            )));
        }
        if n > bytes.len() / 12 {
            return Err(r.invalid(format!(
                "object count {n} exceeds what a {}-byte payload can hold",
                bytes.len()
            )));
        }
        if sub_count > bytes.len() / 16 {
            return Err(r.invalid(format!(
                "subspace count {sub_count} exceeds what a {}-byte payload can hold",
                bytes.len()
            )));
        }

        // Names.
        r.section = ArtifactSection::Names;
        let mut names = Vec::with_capacity(d);
        for j in 0..d {
            let len = r.u32()? as usize;
            let raw = r.take(len)?;
            let name = std::str::from_utf8(raw)
                .map_err(|_| r.invalid(format!("attribute {j} name is not UTF-8")))?;
            names.push(name.to_string());
        }
        r.align8()?;
        // Normalisation parameters.
        r.section = ArtifactSection::NormParams;
        let mut norm = Vec::with_capacity(d);
        for j in 0..d {
            let offset = r.f64()?;
            let divisor = r.f64()?;
            if !offset.is_finite() || !divisor.is_finite() {
                return Err(r.invalid(format!(
                    "non-finite normalisation parameters for attribute {j}"
                )));
            }
            norm.push(NormParam { offset, divisor });
        }
        // Columns: validated in place, not materialised.
        r.section = ArtifactSection::Columns;
        let columns_offset = r.offset;
        for j in 0..d {
            for _ in 0..n {
                if !r.f64()?.is_finite() {
                    return Err(r.invalid(format!("non-finite value in column {j}")));
                }
            }
        }
        // Order permutations: validated in place, not materialised.
        r.section = ArtifactSection::Order;
        let order_offset = r.offset;
        let mut seen = vec![false; n];
        for j in 0..d {
            seen.iter_mut().for_each(|s| *s = false);
            for _ in 0..n {
                let id = r.u32()?;
                if (id as usize) >= n || std::mem::replace(&mut seen[id as usize], true) {
                    return Err(r.invalid(format!(
                        "order of attribute {j} is not a permutation of 0..{n}"
                    )));
                }
            }
        }
        r.align8()?;
        // Subspaces.
        r.section = ArtifactSection::Subspaces;
        let mut lens = Vec::with_capacity(sub_count);
        for _ in 0..sub_count {
            lens.push(r.u32()? as usize);
        }
        r.align8()?;
        let mut subspaces = Vec::with_capacity(sub_count);
        for (s, &len) in lens.iter().enumerate() {
            if len == 0 {
                return Err(r.invalid(format!("subspace {s} is empty")));
            }
            // Strictly ascending dims within 0..d cap a subspace at d
            // attributes; check before allocating from the stored length.
            if len > d {
                return Err(r.invalid(format!(
                    "subspace {s} claims {len} dims, more than the {d} attributes"
                )));
            }
            let mut dims = Vec::with_capacity(len);
            for _ in 0..len {
                dims.push(r.u32()? as usize);
            }
            if !dims.windows(2).all(|w| w[0] < w[1]) || dims[len - 1] >= d {
                return Err(r.invalid(format!(
                    "subspace {s} dims {dims:?} are not strictly ascending within 0..{d}"
                )));
            }
            subspaces.push(ModelSubspace {
                dims,
                contrast: 0.0,
            });
        }
        r.align8()?;
        r.section = ArtifactSection::Contrasts;
        for (s, sub) in subspaces.iter_mut().enumerate() {
            let c = r.f64()?;
            if !c.is_finite() {
                return Err(r.invalid(format!("non-finite contrast for subspace {s}")));
            }
            sub.contrast = c;
        }
        // Version 2 appends the neighbor-index section; a version-1 stream
        // ends here and downstream consumers fall back to the brute scan.
        r.section = ArtifactSection::Index;
        let index = if version >= 2 {
            let kind = r.u32()?;
            if kind != 1 {
                return Err(r.invalid(format!("unknown index kind {kind}")));
            }
            let reserved = r.u32()?;
            if reserved != 0 {
                return Err(r.invalid("non-zero index reserved field".into()));
            }
            let mut trees = Vec::with_capacity(sub_count);
            for s in 0..sub_count {
                let tree_offset = r.offset;
                let node_count = r.u32()? as usize;
                let ids_len = r.u32()? as usize;
                // Reserve what the declared counts imply, capped by what the
                // byte stream can actually still hold.
                let mut nodes = Vec::with_capacity(node_count.min(bytes.len() / 32));
                for _ in 0..node_count {
                    let vantage = r.u32()?;
                    let inner = r.u32()?;
                    let outer = r.u32()?;
                    let start = r.u32()?;
                    let len = r.u32()?;
                    let reserved = r.u32()?;
                    if reserved != 0 {
                        return Err(r.invalid(format!("non-zero reserved node field in tree {s}")));
                    }
                    let mu = r.f64()?;
                    nodes.push(VpNodeData {
                        vantage,
                        inner,
                        outer,
                        start,
                        len,
                        mu,
                    });
                }
                let mut ids = Vec::with_capacity(ids_len.min(bytes.len() / 4));
                for _ in 0..ids_len {
                    ids.push(r.u32()?);
                }
                r.align8()?;
                let tree = VpTreeData { nodes, ids };
                validate_tree(&tree, n, s, tree_offset)?;
                trees.push(tree);
            }
            Some(ModelIndex { trees })
        } else {
            None
        };
        if r.offset != bytes.len() {
            return Err(r.invalid(format!(
                "{} trailing bytes after the last section",
                bytes.len() - r.offset
            )));
        }

        Ok(Self {
            version,
            n,
            d,
            scorer: ScorerSpec {
                kind: scorer_kind,
                k: scorer_k,
            },
            aggregation,
            norm_kind,
            names,
            norm,
            columns_offset,
            order_offset,
            subspaces,
            index,
        })
    }
}

/// A trained HiCS model: the reference data, its rank index, the selected
/// subspaces, and the scorer configuration. See the module docs for the
/// on-disk format.
#[derive(Debug, Clone)]
pub struct HicsModel {
    dataset: Dataset,
    norm_kind: NormKind,
    norm: Vec<NormParam>,
    subspaces: Vec<ModelSubspace>,
    scorer: ScorerSpec,
    aggregation: AggregationKind,
    rank: RankIndex,
    index: Option<ModelIndex>,
}

impl PartialEq for HicsModel {
    fn eq(&self, other: &Self) -> bool {
        // The rank index is a deterministic function of the dataset; it is
        // rebuilt on load and excluded from equality.
        self.dataset == other.dataset
            && self.norm_kind == other.norm_kind
            && self.norm == other.norm
            && self.subspaces == other.subspaces
            && self.scorer == other.scorer
            && self.aggregation == other.aggregation
            && self.index == other.index
    }
}

impl HicsModel {
    /// Assembles a model from its parts. `dataset` must already carry the
    /// normalisation described by `norm_kind` / `norm`.
    ///
    /// # Panics
    /// Panics if shapes are inconsistent, a subspace is out of range or not
    /// strictly ascending, `scorer.k == 0`, or `subspaces` is empty — the
    /// same contract [`HicsModel::from_bytes`] enforces with errors.
    pub fn new(
        dataset: Dataset,
        norm_kind: NormKind,
        norm: Vec<NormParam>,
        subspaces: Vec<ModelSubspace>,
        scorer: ScorerSpec,
        aggregation: AggregationKind,
    ) -> Self {
        assert_eq!(norm.len(), dataset.d(), "one norm param per attribute");
        assert!(!subspaces.is_empty(), "a model needs at least one subspace");
        assert!(scorer.k >= 1, "scorer k must be >= 1");
        assert!(
            dataset.n() >= 2,
            "a servable model needs at least two reference objects (kNN)"
        );
        assert!(
            u32::try_from(dataset.n()).is_ok(),
            "model artifacts cap N at u32::MAX objects"
        );
        for s in &subspaces {
            assert!(!s.dims.is_empty(), "empty subspace in model");
            assert!(
                s.dims.windows(2).all(|w| w[0] < w[1]),
                "subspace dims must be strictly ascending"
            );
            assert!(
                *s.dims.last().unwrap() < dataset.d(),
                "subspace attribute out of range"
            );
            assert!(s.contrast.is_finite(), "non-finite contrast");
        }
        let rank = dataset.rank_index();
        Self {
            dataset,
            norm_kind,
            norm,
            subspaces,
            scorer,
            aggregation,
            rank,
            index: None,
        }
    }

    /// Attaches (or removes) a prebuilt neighbor index. With an index the
    /// artifact serialises as format version 2; without one it stays a
    /// version-1 byte stream.
    ///
    /// # Panics
    /// Panics if the tree count does not match the subspace count or a tree
    /// fails structural validation — the same contract
    /// [`HicsModel::from_bytes`] enforces with errors.
    pub fn set_index(&mut self, index: Option<ModelIndex>) {
        if let Some(idx) = &index {
            assert_eq!(
                idx.trees.len(),
                self.subspaces.len(),
                "one tree per subspace"
            );
            for (s, tree) in idx.trees.iter().enumerate() {
                if let Err(e) = validate_tree(tree, self.n(), s, 0) {
                    panic!("{e}");
                }
            }
        }
        self.index = index;
    }

    /// The prebuilt neighbor index, if the model carries one.
    pub fn index(&self) -> Option<&ModelIndex> {
        self.index.as_ref()
    }

    /// Number of trained objects `N`.
    pub fn n(&self) -> usize {
        self.dataset.n()
    }

    /// Number of attributes `D`.
    pub fn d(&self) -> usize {
        self.dataset.d()
    }

    /// The trained (normalised) reference data.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The stored per-attribute rank index.
    pub fn rank_index(&self) -> &RankIndex {
        &self.rank
    }

    /// The normalisation kind applied at fit time.
    pub fn norm_kind(&self) -> NormKind {
        self.norm_kind
    }

    /// Per-attribute normalisation parameters.
    pub fn norm_params(&self) -> &[NormParam] {
        &self.norm
    }

    /// The selected subspaces, best first.
    pub fn subspaces(&self) -> &[ModelSubspace] {
        &self.subspaces
    }

    /// The scorer configuration.
    pub fn scorer(&self) -> ScorerSpec {
        self.scorer
    }

    /// The score aggregation.
    pub fn aggregation(&self) -> AggregationKind {
        self.aggregation
    }

    /// Maps a raw query row into the trained value space (the same affine
    /// transform the training columns went through at fit time).
    ///
    /// # Panics
    /// Panics if `raw.len() != d`.
    pub fn transform_row(&self, raw: &[f64]) -> Vec<f64> {
        assert_eq!(raw.len(), self.d(), "query row has wrong dimensionality");
        raw.iter()
            .zip(&self.norm)
            .map(|(&v, p)| p.apply(v))
            .collect()
    }

    // ------------------------------------------------------------------
    // Serialisation
    // ------------------------------------------------------------------

    /// Encodes the model into its binary format: version 1 without a
    /// neighbor index, version 2 with one.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n();
        let d = self.d();
        let version = if self.index.is_some() { 2 } else { 1 };
        let mut buf = Vec::with_capacity(HEADER_LEN + d * n * 12 + 1024);
        buf.extend_from_slice(&MAGIC);
        push_u32(&mut buf, version);
        push_u32(&mut buf, HEADER_LEN as u32);
        push_u64(&mut buf, n as u64);
        push_u64(&mut buf, d as u64);
        push_u64(&mut buf, self.subspaces.len() as u64);
        push_u32(&mut buf, self.scorer.kind.code());
        push_u32(&mut buf, self.scorer.k);
        push_u32(&mut buf, self.aggregation.code());
        push_u32(&mut buf, self.norm_kind.code());
        push_u64(&mut buf, 0); // payload length, patched below
        push_u64(&mut buf, 0); // checksum, patched below
        debug_assert_eq!(buf.len(), HEADER_LEN);

        // Names.
        for name in self.dataset.names() {
            push_u32(&mut buf, name.len() as u32);
            buf.extend_from_slice(name.as_bytes());
        }
        pad8(&mut buf);
        // Normalisation parameters.
        for p in &self.norm {
            push_f64(&mut buf, p.offset);
            push_f64(&mut buf, p.divisor);
        }
        // Columns.
        for c in self.dataset.columns() {
            for &v in c {
                push_f64(&mut buf, v);
            }
        }
        // Order permutations.
        for j in 0..d {
            for &id in self.rank.order(j) {
                push_u32(&mut buf, id);
            }
        }
        pad8(&mut buf);
        // Subspaces: lens, flattened dims, contrasts.
        for s in &self.subspaces {
            push_u32(&mut buf, s.dims.len() as u32);
        }
        pad8(&mut buf);
        for s in &self.subspaces {
            for &dim in &s.dims {
                push_u32(&mut buf, dim as u32);
            }
        }
        pad8(&mut buf);
        for s in &self.subspaces {
            push_f64(&mut buf, s.contrast);
        }
        // Version 2: the neighbor-index section.
        if let Some(index) = &self.index {
            push_u32(&mut buf, 1); // index kind: VP-tree
            push_u32(&mut buf, 0); // reserved
            for tree in &index.trees {
                push_u32(&mut buf, tree.nodes.len() as u32);
                push_u32(&mut buf, tree.ids.len() as u32);
                for node in &tree.nodes {
                    push_u32(&mut buf, node.vantage);
                    push_u32(&mut buf, node.inner);
                    push_u32(&mut buf, node.outer);
                    push_u32(&mut buf, node.start);
                    push_u32(&mut buf, node.len);
                    push_u32(&mut buf, 0); // reserved
                    push_f64(&mut buf, node.mu);
                }
                for &id in &tree.ids {
                    push_u32(&mut buf, id);
                }
                pad8(&mut buf);
            }
        }

        let payload = (buf.len() - HEADER_LEN) as u64;
        buf[56..64].copy_from_slice(&payload.to_le_bytes());
        let checksum = artifact_checksum(&buf);
        buf[64..72].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Decodes and validates a model from its binary encoding, materialising
    /// every section into owned storage (columns, rank index and all). For
    /// the zero-copy alternative see [`crate::artifact::ModelArtifact`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, HicsError> {
        let layout = ArtifactLayout::parse(bytes)?;
        Ok(Self::from_layout(&layout, bytes))
    }

    /// Materialises a model from an already-parsed layout over its bytes.
    pub(crate) fn from_layout(layout: &ArtifactLayout, bytes: &[u8]) -> Self {
        let (n, d) = (layout.n, layout.d);
        let mut cols = Vec::with_capacity(d);
        let mut off = layout.columns_offset;
        for _ in 0..d {
            let mut col = Vec::with_capacity(n);
            for _ in 0..n {
                col.push(f64_at(bytes, off));
                off += 8;
            }
            cols.push(col);
        }
        let mut order = Vec::with_capacity(d);
        let mut off = layout.order_offset;
        for _ in 0..d {
            let mut perm = Vec::with_capacity(n);
            for _ in 0..n {
                perm.push(u32_at(bytes, off));
                off += 4;
            }
            order.push(perm);
        }
        let dataset = Dataset::from_columns_named(cols, layout.names.clone());
        let rank = RankIndex::from_order(order);
        Self {
            dataset,
            norm_kind: layout.norm_kind,
            norm: layout.norm.clone(),
            subspaces: layout.subspaces.clone(),
            scorer: layout.scorer,
            aggregation: layout.aggregation,
            rank,
            index: layout.index.clone(),
        }
    }

    /// Writes the artifact to `path` atomically: the bytes go to a
    /// temporary file in the same directory, synced, then renamed over
    /// `path`. The destination is never truncated in place — a serving
    /// process may have the old artifact memory-mapped
    /// ([`crate::artifact::ModelArtifact::open_mmap`]), and truncating a
    /// mapped file turns its next page fault into a fatal `SIGBUS`; with
    /// the rename, the old inode lives on until every map of it is gone.
    pub fn save(&self, path: &Path) -> Result<(), HicsError> {
        let bytes = self.to_bytes();
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = path.with_file_name(tmp_name);
        let write = (|| -> Result<(), HicsError> {
            let mut f =
                std::fs::File::create(&tmp).map_err(|e| HicsError::io_path("creating", &tmp, e))?;
            f.write_all(&bytes)
                .map_err(|e| HicsError::io_path("writing", &tmp, e))?;
            f.sync_all()
                .map_err(|e| HicsError::io_path("syncing", &tmp, e))?;
            std::fs::rename(&tmp, path).map_err(|e| HicsError::io_path("renaming into", path, e))
        })();
        if write.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        write
    }

    /// Reads and validates an artifact from `path` into owned storage. For
    /// the zero-copy loader see
    /// [`crate::artifact::ModelArtifact::open_mmap`].
    pub fn load(path: &Path) -> Result<Self, HicsError> {
        let mut f =
            std::fs::File::open(path).map_err(|e| HicsError::io_path("opening", path, e))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)
            .map_err(|e| HicsError::io_path("reading", path, e))?;
        Self::from_bytes(&bytes)
    }
}

/// Reads the magic and format version of the file at `path` without
/// decoding it: the cheap sniff that routes an `.hics` path to the right
/// loader (versions 1–2 are plain model artifacts, version 3 is a sharded
/// model manifest — see [`crate::manifest`]).
pub fn peek_artifact_version(path: &Path) -> Result<u32, HicsError> {
    let mut f = std::fs::File::open(path).map_err(|e| HicsError::io_path("opening", path, e))?;
    let mut head = [0u8; 12];
    let mut got = 0usize;
    while got < head.len() {
        match f.read(&mut head[got..]) {
            Ok(0) => {
                return Err(HicsError::Truncated {
                    section: ArtifactSection::Header,
                    offset: got,
                    needed: head.len() - got,
                    available: 0,
                })
            }
            Ok(k) => got += k,
            Err(e) => return Err(HicsError::io_path("reading", path, e)),
        }
    }
    if head[..8] != MAGIC {
        return Err(HicsError::BadMagic);
    }
    Ok(u32::from_le_bytes(head[8..12].try_into().expect("4 bytes")))
}

/// The `f64` values of `col` as little-endian bytes — borrowed (an in-place
/// cast) on little-endian targets, copied elsewhere.
pub(crate) fn f64_slice_le_bytes(col: &[f64]) -> std::borrow::Cow<'_, [u8]> {
    if cfg!(target_endian = "little") {
        // SAFETY: every f64 is 8 plain bytes with no invalid patterns, the
        // slice covers exactly `size_of_val(col)` initialised bytes, and u8
        // has no alignment requirement.
        std::borrow::Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(col.as_ptr() as *const u8, std::mem::size_of_val(col))
        })
    } else {
        std::borrow::Cow::Owned(col.iter().flat_map(|v| v.to_le_bytes()).collect())
    }
}

/// The `u32` values of `ids` as little-endian bytes (same contract as
/// [`f64_slice_le_bytes`]).
pub(crate) fn u32_slice_le_bytes(ids: &[u32]) -> std::borrow::Cow<'_, [u8]> {
    if cfg!(target_endian = "little") {
        // SAFETY: as above — u32s are 4 plain bytes each.
        std::borrow::Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(ids.as_ptr() as *const u8, std::mem::size_of_val(ids))
        })
    } else {
        std::borrow::Cow::Owned(ids.iter().flat_map(|v| v.to_le_bytes()).collect())
    }
}

/// A writer that FNV-hashes everything it forwards — the streaming
/// counterpart of [`artifact_checksum`].
struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn put(&mut self, bytes: &[u8]) -> Result<(), std::io::Error> {
        self.hash = fnv1a(self.hash, bytes);
        self.inner.write_all(bytes)
    }

    fn pad8(&mut self, written: usize) -> Result<usize, std::io::Error> {
        let rem = written % 8;
        if rem == 0 {
            return Ok(0);
        }
        let pad = [0u8; 8];
        self.put(&pad[..8 - rem])?;
        Ok(8 - rem)
    }
}

/// Streams a model artifact to `path` without ever materialising the full
/// training matrix: columns are written (and checksummed) one at a time
/// straight from the source view, and the per-attribute argsort is either
/// reused from `order` (a caller that already built the rank index — the
/// subspace search does — should pass it rather than pay the
/// `O(D · N log N)` sorts twice) or computed transiently per column. The
/// resulting file is **byte-identical** to [`HicsModel::save`] of the
/// equivalent in-memory model (asserted by the module tests), so both load
/// paths treat the two interchangeably.
///
/// Peak heap usage is `O(N)` per in-flight column (the argsort scratch)
/// plus the small sections — never `O(N·D)` — which is what lets `hics fit`
/// run over an mmap-backed dataset store larger than RAM.
///
/// Like [`HicsModel::save`], the bytes go to a temp file in the same
/// directory, are synced, then renamed over `path` (the checksum is patched
/// in before the rename), so a serving process with the old artifact mapped
/// never sees a torn file.
#[allow(clippy::too_many_arguments)]
pub fn save_model_streaming(
    path: &Path,
    view: &crate::source::ColumnsView<'_>,
    norm_kind: NormKind,
    norm: &[NormParam],
    subspaces: &[ModelSubspace],
    scorer: ScorerSpec,
    aggregation: AggregationKind,
    index: Option<&ModelIndex>,
    order: Option<&RankIndex>,
) -> Result<(), HicsError> {
    use std::io::Seek;
    let (n, d) = (view.n(), view.d());
    let invalid = |msg: String| HicsError::InvalidInput(msg);
    if let Some(rank) = order {
        if rank.n() != n || rank.d() != d {
            return Err(invalid(format!(
                "rank index is {} x {}, view is {n} x {d}",
                rank.n(),
                rank.d()
            )));
        }
    }
    if n < 2 {
        return Err(invalid(format!(
            "a servable model needs at least two reference objects, got {n}"
        )));
    }
    if u32::try_from(n).is_err() {
        return Err(invalid(format!(
            "object count {n} exceeds the u32 artifact cap"
        )));
    }
    if norm.len() != d {
        return Err(invalid(format!(
            "{} norm params for {d} attributes",
            norm.len()
        )));
    }
    if subspaces.is_empty() {
        return Err(invalid("a model needs at least one subspace".into()));
    }
    if scorer.k == 0 {
        return Err(invalid("scorer k must be >= 1".into()));
    }
    for (s, sub) in subspaces.iter().enumerate() {
        if sub.dims.is_empty()
            || !sub.dims.windows(2).all(|w| w[0] < w[1])
            || *sub.dims.last().expect("non-empty") >= d
        {
            return Err(invalid(format!(
                "subspace {s} dims {:?} are not strictly ascending within 0..{d}",
                sub.dims
            )));
        }
        if !sub.contrast.is_finite() {
            return Err(invalid(format!("non-finite contrast for subspace {s}")));
        }
    }
    if let Some(idx) = index {
        if idx.trees.len() != subspaces.len() {
            return Err(invalid(format!(
                "{} index trees for {} subspaces",
                idx.trees.len(),
                subspaces.len()
            )));
        }
        for (s, tree) in idx.trees.iter().enumerate() {
            validate_tree(tree, n, s, 0)?;
        }
    }

    // Exact payload length, mirroring `to_bytes` section for section.
    let mut off = HEADER_LEN;
    let pad = |o: usize| o.next_multiple_of(8);
    for name in view.names() {
        off += 4 + name.len();
    }
    off = pad(off);
    off += d * 16; // norm params
    off += d * n * 8; // columns
    off += d * n * 4; // order permutations
    off = pad(off);
    off += subspaces.len() * 4; // lens
    off = pad(off);
    off += subspaces.iter().map(|s| s.dims.len() * 4).sum::<usize>();
    off = pad(off);
    off += subspaces.len() * 8; // contrasts
    if let Some(idx) = index {
        off += 8;
        for tree in &idx.trees {
            off = pad(off + 8 + tree.nodes.len() * 32 + tree.ids.len() * 4);
        }
    }
    let payload = (off - HEADER_LEN) as u64;
    let version: u32 = if index.is_some() { 2 } else { 1 };

    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    push_u32(&mut header, version);
    push_u32(&mut header, HEADER_LEN as u32);
    push_u64(&mut header, n as u64);
    push_u64(&mut header, d as u64);
    push_u64(&mut header, subspaces.len() as u64);
    push_u32(&mut header, scorer.kind.code());
    push_u32(&mut header, scorer.k);
    push_u32(&mut header, aggregation.code());
    push_u32(&mut header, norm_kind.code());
    push_u64(&mut header, payload);
    push_u64(&mut header, 0); // checksum, patched below
    debug_assert_eq!(header.len(), HEADER_LEN);

    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let write = (|| -> Result<(), HicsError> {
        let file =
            std::fs::File::create(&tmp).map_err(|e| HicsError::io_path("creating", &tmp, e))?;
        let io = |e: std::io::Error| HicsError::io_path("writing", &tmp, e);
        let mut w = HashingWriter {
            inner: std::io::BufWriter::new(file),
            hash: fnv1a(FNV_OFFSET, &header[..64]),
        };
        w.inner.write_all(&header).map_err(io)?;
        // Names.
        let mut written = 0usize;
        for name in view.names() {
            w.put(&(name.len() as u32).to_le_bytes()).map_err(io)?;
            w.put(name.as_bytes()).map_err(io)?;
            written += 4 + name.len();
        }
        w.pad8(written).map_err(io)?;
        // Normalisation parameters.
        for p in norm {
            w.put(&p.offset.to_le_bytes()).map_err(io)?;
            w.put(&p.divisor.to_le_bytes()).map_err(io)?;
        }
        // Columns, one at a time straight from the view.
        for j in 0..d {
            w.put(&f64_slice_le_bytes(view.col(j))).map_err(io)?;
        }
        // Order permutations: reused from the caller's rank index when
        // available, one transient argsort per column otherwise.
        for j in 0..d {
            match order {
                Some(rank) => w.put(&u32_slice_le_bytes(rank.order(j))).map_err(io)?,
                None => {
                    let order = hics_stats::rank::argsort(view.col(j));
                    w.put(&u32_slice_le_bytes(&order)).map_err(io)?;
                }
            }
        }
        // d·n·4 order bytes follow 8-aligned sections, so realign.
        w.pad8(d * n * 4).map_err(io)?;
        // Subspaces: lens, flattened dims, contrasts.
        for s in subspaces {
            w.put(&(s.dims.len() as u32).to_le_bytes()).map_err(io)?;
        }
        w.pad8(subspaces.len() * 4).map_err(io)?;
        written = 0;
        for s in subspaces {
            for &dim in &s.dims {
                w.put(&(dim as u32).to_le_bytes()).map_err(io)?;
            }
            written += s.dims.len() * 4;
        }
        w.pad8(written).map_err(io)?;
        for s in subspaces {
            w.put(&s.contrast.to_le_bytes()).map_err(io)?;
        }
        // Version 2: the neighbor-index section.
        if let Some(idx) = index {
            w.put(&1u32.to_le_bytes()).map_err(io)?;
            w.put(&0u32.to_le_bytes()).map_err(io)?;
            for tree in &idx.trees {
                w.put(&(tree.nodes.len() as u32).to_le_bytes())
                    .map_err(io)?;
                w.put(&(tree.ids.len() as u32).to_le_bytes()).map_err(io)?;
                for node in &tree.nodes {
                    w.put(&node.vantage.to_le_bytes()).map_err(io)?;
                    w.put(&node.inner.to_le_bytes()).map_err(io)?;
                    w.put(&node.outer.to_le_bytes()).map_err(io)?;
                    w.put(&node.start.to_le_bytes()).map_err(io)?;
                    w.put(&node.len.to_le_bytes()).map_err(io)?;
                    w.put(&0u32.to_le_bytes()).map_err(io)?;
                    w.put(&node.mu.to_le_bytes()).map_err(io)?;
                }
                w.put(&u32_slice_le_bytes(&tree.ids)).map_err(io)?;
                w.pad8(tree.ids.len() * 4).map_err(io)?;
            }
        }
        let checksum = w.hash;
        let mut file = w
            .inner
            .into_inner()
            .map_err(|e| HicsError::io_path("flushing", &tmp, e.into()))?;
        file.seek(std::io::SeekFrom::Start(64))
            .map_err(|e| HicsError::io_path("seeking in", &tmp, e))?;
        file.write_all(&checksum.to_le_bytes())
            .map_err(|e| HicsError::io_path("patching checksum in", &tmp, e))?;
        file.sync_all()
            .map_err(|e| HicsError::io_path("syncing", &tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| HicsError::io_path("renaming into", path, e))
    })();
    if write.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    write
}

/// Reads the little-endian `f64` at `off` (bounds already validated by
/// [`ArtifactLayout::parse`]).
#[inline]
pub(crate) fn f64_at(bytes: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

/// Reads the little-endian `u32` at `off`.
#[inline]
pub(crate) fn u32_at(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

pub(crate) fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

/// Bounds-checked little-endian reader over a byte slice, carrying the
/// artifact section it is currently inside so every error is located —
/// the shared parsing substrate of the model artifact, the sharded
/// manifest ([`crate::manifest`]) and the dataset store (`hics-store`),
/// which all report failures through the same [`HicsError`]
/// section/offset vocabulary.
pub struct Reader<'a> {
    /// The byte stream under decode.
    pub bytes: &'a [u8],
    /// Current read position.
    pub offset: usize,
    /// The section errors are attributed to.
    pub section: ArtifactSection,
}

impl<'a> Reader<'a> {
    /// Starts a reader at offset 0, inside the header section.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            offset: 0,
            section: ArtifactSection::Header,
        }
    }

    /// An [`HicsError::InvalidModel`] at the current section and offset.
    pub fn invalid(&self, msg: String) -> HicsError {
        HicsError::InvalidModel {
            section: self.section,
            offset: self.offset,
            msg,
        }
    }

    /// Consumes `len` bytes, or fails with a located truncation error.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], HicsError> {
        if self.bytes.len() - self.offset < len {
            return Err(HicsError::Truncated {
                section: self.section,
                offset: self.offset,
                needed: len,
                available: self.bytes.len() - self.offset,
            });
        }
        let s = &self.bytes[self.offset..self.offset + len];
        self.offset += len;
        Ok(s)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, HicsError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, HicsError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `f64` (any bit pattern).
    pub fn f64(&mut self) -> Result<f64, HicsError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` header field that must fit a `usize`.
    pub fn usize_field(&mut self, what: &str) -> Result<usize, HicsError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.invalid(format!("{what} {v} exceeds usize")))
    }

    /// Skips the zero padding up to the next 8-byte boundary.
    pub fn align8(&mut self) -> Result<(), HicsError> {
        let rem = self.offset % 8;
        if rem != 0 {
            let pad = self.take(8 - rem)?;
            if pad.iter().any(|&b| b != 0) {
                return Err(self.invalid("non-zero section padding".into()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticConfig;

    fn sample_model(norm_kind: NormKind) -> HicsModel {
        let g = SyntheticConfig::new(60, 5).with_seed(3).generate();
        let (data, norm) = apply_normalization(&g.dataset, norm_kind);
        HicsModel::new(
            data,
            norm_kind,
            norm,
            vec![
                ModelSubspace {
                    dims: vec![0, 1],
                    contrast: 0.83,
                },
                ModelSubspace {
                    dims: vec![1, 3, 4],
                    contrast: 0.41,
                },
            ],
            ScorerSpec {
                kind: ScorerKind::Lof,
                k: 7,
            },
            AggregationKind::Average,
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        for norm in [NormKind::None, NormKind::MinMax, NormKind::ZScore] {
            let m = sample_model(norm);
            let bytes = m.to_bytes();
            let back = HicsModel::from_bytes(&bytes).expect("roundtrip");
            assert_eq!(m, back);
            // Rank index rebuilds identically.
            for j in 0..m.d() {
                assert_eq!(m.rank_index().order(j), back.rank_index().order(j));
                assert_eq!(m.rank_index().rank(j), back.rank_index().rank(j));
            }
            assert_eq!(bytes, back.to_bytes());
        }
    }

    #[test]
    fn sections_are_eight_byte_aligned() {
        let m = sample_model(NormKind::MinMax);
        let bytes = m.to_bytes();
        assert_eq!(bytes.len() % 8, 0);
        assert_eq!(&bytes[..8], &MAGIC);
        // The layout's bulk-section offsets are 8-aligned — the invariant
        // the zero-copy column views stand on.
        let layout = ArtifactLayout::parse(&bytes).expect("parse");
        assert_eq!(layout.columns_offset % 8, 0);
        assert_eq!(layout.order_offset % 8, 0);
    }

    #[test]
    fn save_load_file_roundtrip() {
        let dir = std::env::temp_dir().join("hics-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.hicsmodel");
        let m = sample_model(NormKind::ZScore);
        m.save(&path).expect("save");
        let back = HicsModel::load(&path).expect("load");
        assert_eq!(m, back);
        std::fs::remove_file(&path).ok();
    }

    /// The streaming writer must emit the exact bytes `HicsModel::save`
    /// emits for the same content — the invariant that lets the
    /// out-of-core fit path and the in-memory pipeline produce
    /// interchangeable (bit-identical) artifacts.
    #[test]
    fn streaming_writer_is_byte_identical_to_save() {
        let dir = std::env::temp_dir().join("hics-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (tag, with_index) in [("v1", false), ("v2", true)] {
            for norm_kind in [NormKind::None, NormKind::ZScore] {
                let mut m = sample_model(norm_kind);
                if with_index {
                    // A single-leaf tree per subspace is the smallest
                    // structurally valid index.
                    let leaf = VpTreeData {
                        nodes: vec![VpNodeData {
                            vantage: VP_NONE,
                            inner: VP_NONE,
                            outer: VP_NONE,
                            start: 0,
                            len: m.n() as u32,
                            mu: 0.0,
                        }],
                        ids: (0..m.n() as u32).collect(),
                    };
                    m.set_index(Some(ModelIndex {
                        trees: vec![leaf.clone(), leaf],
                    }));
                }
                let path = dir.join(format!("stream-{tag}-{}.hicsmodel", norm_kind.name()));
                let view = crate::source::ColumnsView::from_dataset(m.dataset());
                save_model_streaming(
                    &path,
                    &view,
                    m.norm_kind(),
                    m.norm_params(),
                    m.subspaces(),
                    m.scorer(),
                    m.aggregation(),
                    m.index(),
                    // Alternate between the transient-argsort path and a
                    // caller-supplied rank index; both must be canonical.
                    if with_index {
                        Some(m.rank_index())
                    } else {
                        None
                    },
                )
                .expect("streaming save");
                let streamed = std::fs::read(&path).expect("read back");
                assert_eq!(streamed, m.to_bytes(), "{tag}/{}", norm_kind.name());
                std::fs::remove_file(&path).ok();
            }
        }
    }

    #[test]
    fn streaming_writer_rejects_invalid_content() {
        let m = sample_model(NormKind::None);
        let view = crate::source::ColumnsView::from_dataset(m.dataset());
        let path = std::env::temp_dir().join("hics-model-test-reject.hicsmodel");
        // No subspaces.
        assert!(save_model_streaming(
            &path,
            &view,
            NormKind::None,
            m.norm_params(),
            &[],
            m.scorer(),
            m.aggregation(),
            None,
            None,
        )
        .is_err());
        // Out-of-range subspace.
        assert!(save_model_streaming(
            &path,
            &view,
            NormKind::None,
            m.norm_params(),
            &[ModelSubspace {
                dims: vec![0, 99],
                contrast: 0.5
            }],
            m.scorer(),
            m.aggregation(),
            None,
            None,
        )
        .is_err());
        assert!(!path.exists(), "failed save must not leave a file");
    }

    #[test]
    fn peek_reports_version_and_rejects_non_artifacts() {
        let dir = std::env::temp_dir().join("hics-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("peek.hicsmodel");
        let m = sample_model(NormKind::None);
        m.save(&path).expect("save");
        assert_eq!(peek_artifact_version(&path).expect("peek"), 1);
        std::fs::write(&path, b"definitely not an artifact").unwrap();
        assert!(matches!(
            peek_artifact_version(&path),
            Err(HicsError::BadMagic)
        ));
        std::fs::write(&path, &MAGIC[..6]).unwrap();
        assert!(matches!(
            peek_artifact_version(&path),
            Err(HicsError::Truncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let missing = std::env::temp_dir().join("hics-no-such-artifact.hicsmodel");
        match HicsModel::load(&missing) {
            Err(HicsError::Io { context, .. }) => {
                assert!(context.contains("opening"), "{context}")
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let m = sample_model(NormKind::None);
        let mut bytes = m.to_bytes();
        bytes[0] ^= 0xff;
        assert!(matches!(
            HicsModel::from_bytes(&bytes),
            Err(HicsError::BadMagic)
        ));
        let mut bytes = m.to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            HicsModel::from_bytes(&bytes),
            Err(HicsError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let m = sample_model(NormKind::None);
        let bytes = m.to_bytes();
        // Every strict prefix must fail loudly, never panic or succeed.
        for cut in [0, 4, 8, 15, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            assert!(
                HicsModel::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn rejects_corrupt_permutation() {
        let m = sample_model(NormKind::None);
        let mut bytes = m.to_bytes();
        // The order section starts after names (aligned), norm params and
        // columns; corrupt its first entry to a duplicate of the second.
        let order_start = ArtifactLayout::parse(&bytes).expect("parse").order_offset;
        let second = bytes[order_start + 4..order_start + 8].to_vec();
        bytes[order_start..order_start + 4].copy_from_slice(&second);
        // The checksum catches the corruption before section parsing; with
        // a re-stamped checksum, permutation validation catches it.
        assert!(matches!(
            HicsModel::from_bytes(&bytes),
            Err(HicsError::ChecksumMismatch { .. })
        ));
        let fixed = artifact_checksum(&bytes);
        bytes[64..72].copy_from_slice(&fixed.to_le_bytes());
        match HicsModel::from_bytes(&bytes) {
            Err(HicsError::InvalidModel {
                section, offset, ..
            }) => {
                assert_eq!(section, ArtifactSection::Order);
                assert!(offset > order_start, "offset {offset} within the section");
            }
            other => panic!("expected InvalidModel in order section, got {other:?}"),
        }
    }

    /// Astronomically large header counts (with a freshly stamped checksum,
    /// so only the cross-check can catch them) must come back as typed
    /// errors — never a capacity-overflow panic or an allocator abort.
    #[test]
    fn rejects_huge_header_counts_without_allocating() {
        let m = sample_model(NormKind::None);
        let good = m.to_bytes();
        for field_offset in [16usize, 24, 32] {
            // n, d, sub_count respectively.
            let mut bad = good.clone();
            bad[field_offset..field_offset + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
            let fixed = artifact_checksum(&bad);
            bad[64..72].copy_from_slice(&fixed.to_le_bytes());
            assert!(
                matches!(
                    HicsModel::from_bytes(&bad),
                    Err(HicsError::InvalidModel { .. })
                ),
                "field at {field_offset} was not rejected cleanly"
            );
        }
        // An oversized per-subspace dim count is rejected the same way.
        let mut bad = good.clone();
        let layout = ArtifactLayout::parse(&good).expect("parse");
        // The sub-lens section follows the order section (aligned).
        let order_end = layout.order_offset + m.d() * m.n() * 4;
        let lens_offset = order_end.div_ceil(8) * 8;
        bad[lens_offset..lens_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let fixed = artifact_checksum(&bad);
        bad[64..72].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            HicsModel::from_bytes(&bad),
            Err(HicsError::InvalidModel { .. }) | Err(HicsError::Truncated { .. })
        ));
    }

    #[test]
    fn transform_row_matches_training_transform() {
        let g = SyntheticConfig::new(50, 4).with_seed(9).generate();
        for kind in [NormKind::None, NormKind::MinMax, NormKind::ZScore] {
            let (data, norm) = apply_normalization(&g.dataset, kind);
            let m = HicsModel::new(
                data.clone(),
                kind,
                norm,
                vec![ModelSubspace {
                    dims: vec![0, 1],
                    contrast: 0.5,
                }],
                ScorerSpec::default(),
                AggregationKind::Average,
            );
            for i in 0..g.dataset.n() {
                let raw = g.dataset.row(i);
                let t = m.transform_row(&raw);
                assert_eq!(t, data.row(i), "row {i} under {kind:?}");
            }
        }
    }

    #[test]
    fn minmax_matches_dataset_normalization_bitwise() {
        let g = SyntheticConfig::new(50, 3).with_seed(4).generate();
        let (norm_data, _) = apply_normalization(&g.dataset, NormKind::MinMax);
        let mut reference = g.dataset.clone();
        reference.normalize_min_max();
        assert_eq!(norm_data, reference);
        let (z_data, _) = apply_normalization(&g.dataset, NormKind::ZScore);
        let mut z_ref = g.dataset.clone();
        z_ref.normalize_z_score();
        assert_eq!(z_data, z_ref);
    }

    #[test]
    #[should_panic]
    fn new_rejects_out_of_range_subspace() {
        let g = SyntheticConfig::new(20, 3).with_seed(1).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
        HicsModel::new(
            data,
            NormKind::None,
            norm,
            vec![ModelSubspace {
                dims: vec![0, 3],
                contrast: 0.5,
            }],
            ScorerSpec::default(),
            AggregationKind::Average,
        );
    }
}
