//! Per-attribute rank index structures.
//!
//! Paper, Section IV-A: *"instead of defining the condition intervals
//! [l_i, r_i] directly in the domain of the underlying variables x_{s_i}, we
//! precalculate one-dimensional index structures for all attributes of the
//! database. This allows to perform the selection over the sorted indices."*
//!
//! [`RankIndex`] stores, per attribute, **both directions** of that index:
//!
//! * the argsort permutation (`order`): position → object id, so a slice
//!   condition is a contiguous block `order[start..start+len]`;
//! * its inverse (`rank`): object id → position, so testing whether an
//!   object satisfies a condition is one `O(1)` rank comparison
//!   `start <= rank[id] < start + len` — the probe that lets
//!   [`crate::bitset::SliceMask::retain_rank_window`] intersect conditions
//!   without touching unselected objects, and that lets the deviation tests
//!   walk a conditional sample in sorted order without re-sorting it.

use crate::bitset::SliceMask;
use crate::dataset::Dataset;
use hics_stats::rank::argsort;

/// Argsort permutation plus inverse ranks for every attribute of a dataset.
#[derive(Debug, Clone)]
pub struct RankIndex {
    order: Vec<Vec<u32>>,
    rank: Vec<Vec<u32>>,
    n: usize,
}

/// Backwards-compatible name for [`RankIndex`] (the pre-rank-engine type
/// only carried the argsort direction).
pub type SortedIndices = RankIndex;

/// Inverts one argsort permutation into a rank array.
fn invert(order: &[u32]) -> Vec<u32> {
    let mut rank = vec![0u32; order.len()];
    for (pos, &id) in order.iter().enumerate() {
        rank[id as usize] = pos as u32;
    }
    rank
}

impl RankIndex {
    /// Builds the index for all attributes (`O(D · N log N)`).
    pub fn build(data: &Dataset) -> Self {
        Self::build_columns(data.columns().iter().map(|c| c.as_slice()))
    }

    /// Builds the index for an explicit set of columns (used by consumers
    /// that only need a subspace projection, e.g. the RIS neighbourhood
    /// counter and the KDE box prefilter).
    ///
    /// # Panics
    /// Panics if columns have unequal lengths or there are none.
    pub fn build_columns<'c>(columns: impl IntoIterator<Item = &'c [f64]>) -> Self {
        let order: Vec<Vec<u32>> = columns.into_iter().map(argsort).collect();
        assert!(!order.is_empty(), "rank index needs at least one column");
        let n = order[0].len();
        assert!(
            order.iter().all(|o| o.len() == n),
            "all columns must have equal length"
        );
        let rank = order.iter().map(|o| invert(o)).collect();
        Self { order, rank, n }
    }

    /// Rebuilds the index from stored argsort permutations (the model
    /// artifact persists only the `order` direction; the inverse ranks are
    /// recomputed here in `O(D·N)`).
    ///
    /// # Panics
    /// Panics if `order` is empty, columns have unequal lengths, or any
    /// column is not a permutation of `0..n` (an out-of-range id panics on
    /// the bounds check; duplicates leave some rank unset and are caught by
    /// the debug assertion). Callers deserialising untrusted bytes must
    /// validate first (see `hics-data`'s model loader).
    pub fn from_order(order: Vec<Vec<u32>>) -> Self {
        assert!(!order.is_empty(), "rank index needs at least one column");
        let n = order[0].len();
        assert!(
            order.iter().all(|o| o.len() == n),
            "all columns must have equal length"
        );
        let rank: Vec<Vec<u32>> = order.iter().map(|o| invert(o)).collect();
        debug_assert!(order.iter().zip(&rank).all(|(o, r)| o
            .iter()
            .enumerate()
            .all(|(p, &id)| r[id as usize] == p as u32)));
        Self { order, rank, n }
    }

    /// Number of objects indexed.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of attributes indexed.
    pub fn d(&self) -> usize {
        self.order.len()
    }

    /// The ascending-order object ids of attribute `j`: `order(j)[0]` is the
    /// object with the smallest value in attribute `j`.
    pub fn order(&self, j: usize) -> &[u32] {
        &self.order[j]
    }

    /// Alias of [`RankIndex::order`] kept from the `SortedIndices` days.
    pub fn attr(&self, j: usize) -> &[u32] {
        &self.order[j]
    }

    /// The inverse permutation of attribute `j`: `rank(j)[id]` is the sorted
    /// position of object `id`.
    pub fn rank(&self, j: usize) -> &[u32] {
        &self.rank[j]
    }

    /// A contiguous index block `[start, start + len)` of attribute `j` — the
    /// object ids whose attribute-`j` values fall in one adaptive slice
    /// condition.
    ///
    /// # Panics
    /// Panics if the window exceeds `N`.
    pub fn block(&self, j: usize, start: usize, len: usize) -> &[u32] {
        &self.order[j][start..start + len]
    }

    /// The rank window `[start, end)` of attribute `j` covering exactly the
    /// objects with `lo <= value <= hi`, found by binary search over the
    /// sorted order (`col` must be the column the index was built from).
    ///
    /// # Panics
    /// Panics if `col` has the wrong length.
    pub fn value_window(&self, j: usize, col: &[f64], lo: f64, hi: f64) -> (usize, usize) {
        assert_eq!(col.len(), self.n, "column/index length mismatch");
        let order = &self.order[j];
        let start = order.partition_point(|&id| col[id as usize] < lo);
        let end = order.partition_point(|&id| col[id as usize] <= hi);
        (start, end)
    }

    /// Intersects per-attribute value windows `|value − center| <= radius`
    /// over the listed attributes into `mask` (cleared first): the shared
    /// block-selection kernel of the RIS neighbourhood counter and the KDE
    /// box prefilter. `cols[k]` must be the column attribute `k` of this
    /// index was built from.
    ///
    /// The first window fills the mask from its sorted block (`O(window)`);
    /// every further window is a rank-probe refinement (`O(popcount)`).
    ///
    /// # Panics
    /// Panics if `cols` is empty or does not match the index.
    pub fn fill_box_mask(&self, mask: &mut SliceMask, cols: &[&[f64]], center: usize, radius: f64) {
        assert!(!cols.is_empty(), "box mask needs at least one attribute");
        assert_eq!(cols.len(), self.d(), "one column per indexed attribute");
        mask.clear();
        for (j, col) in cols.iter().enumerate() {
            let c = col[center];
            let (lo, hi) = self.value_window(j, col, c - radius, c + radius);
            if j == 0 {
                mask.fill_from_ids(&self.order[j][lo..hi]);
            } else {
                mask.retain_rank_window(&self.rank[j], lo as u32, hi as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_order_per_attribute() {
        let data = Dataset::from_columns(vec![vec![3.0, 1.0, 2.0], vec![0.5, 0.7, 0.1]]);
        let idx = data.sorted_indices();
        assert_eq!(idx.n(), 3);
        assert_eq!(idx.d(), 2);
        assert_eq!(idx.attr(0), &[1, 2, 0]);
        assert_eq!(idx.attr(1), &[2, 0, 1]);
    }

    #[test]
    fn rank_is_inverse_of_order() {
        let data = Dataset::from_columns(vec![
            vec![0.9, 0.1, 0.5, 0.3, 0.7],
            vec![5.0, 4.0, 3.0, 2.0, 1.0],
        ]);
        let idx = data.rank_index();
        for j in 0..idx.d() {
            for (pos, &id) in idx.order(j).iter().enumerate() {
                assert_eq!(idx.rank(j)[id as usize] as usize, pos);
            }
        }
        // Explicit spot check: attribute 1 is reversed.
        assert_eq!(idx.rank(1), &[4, 3, 2, 1, 0]);
    }

    #[test]
    fn blocks_are_windows_of_sorted_order() {
        let data = Dataset::from_columns(vec![vec![5.0, 4.0, 3.0, 2.0, 1.0]]);
        let idx = data.sorted_indices();
        assert_eq!(idx.block(0, 0, 2), &[4, 3]);
        assert_eq!(idx.block(0, 3, 2), &[1, 0]);
    }

    #[test]
    fn block_values_are_contiguous_in_value_space() {
        let col = vec![0.9, 0.1, 0.5, 0.3, 0.7];
        let data = Dataset::from_columns(vec![col.clone()]);
        let idx = data.sorted_indices();
        let block = idx.block(0, 1, 3);
        let vals: Vec<f64> = block.iter().map(|&i| col[i as usize]).collect();
        // The slice selects a value-contiguous range: [0.3, 0.5, 0.7].
        assert_eq!(vals, vec![0.3, 0.5, 0.7]);
    }

    #[test]
    fn ties_keep_all_duplicates_addressable() {
        let data = Dataset::from_columns(vec![vec![1.0, 1.0, 1.0, 0.0]]);
        let idx = data.sorted_indices();
        assert_eq!(idx.attr(0)[0], 3);
        assert_eq!(idx.attr(0).len(), 4);
    }

    #[test]
    fn value_window_selects_inclusive_range() {
        let col = vec![0.9, 0.1, 0.5, 0.3, 0.7];
        let data = Dataset::from_columns(vec![col.clone()]);
        let idx = data.rank_index();
        let (lo, hi) = idx.value_window(0, &col, 0.3, 0.7);
        let ids: Vec<u32> = idx.order(0)[lo..hi].to_vec();
        assert_eq!(ids, vec![3, 2, 4]); // values 0.3, 0.5, 0.7
                                        // Empty window.
        let (lo, hi) = idx.value_window(0, &col, 0.91, 0.95);
        assert_eq!(lo, hi);
    }

    #[test]
    fn box_mask_matches_brute_force() {
        let cols = vec![
            vec![0.1, 0.4, 0.45, 0.8, 0.5, 0.2],
            vec![0.3, 0.35, 0.9, 0.4, 0.38, 0.31],
        ];
        let data = Dataset::from_columns(cols.clone());
        let idx = data.rank_index();
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut mask = SliceMask::new(data.n());
        for center in 0..data.n() {
            idx.fill_box_mask(&mut mask, &col_refs, center, 0.1);
            let expected: Vec<u32> = (0..data.n() as u32)
                .filter(|&j| {
                    cols.iter()
                        .all(|c| (c[j as usize] - c[center]).abs() <= 0.1)
                })
                .collect();
            assert_eq!(mask.iter().collect::<Vec<_>>(), expected, "center {center}");
        }
    }
}
