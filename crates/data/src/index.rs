//! Per-attribute sorted index structures.
//!
//! Paper, Section IV-A: *"instead of defining the condition intervals
//! [l_i, r_i] directly in the domain of the underlying variables x_{s_i}, we
//! precalculate one-dimensional index structures for all attributes of the
//! database. This allows to perform the selection over the sorted indices."*
//!
//! A subspace-slice condition on attribute `j` is then simply a contiguous
//! block of `SortedIndices::attr(j)` — an `O(1)`-addressable window whose
//! membership is materialised into a boolean mask.

use crate::dataset::Dataset;
use hics_stats::rank::argsort;

/// Argsort indices for every attribute of a dataset.
#[derive(Debug, Clone)]
pub struct SortedIndices {
    per_attr: Vec<Vec<u32>>,
    n: usize,
}

impl SortedIndices {
    /// Builds sorted indices for all attributes (`O(D · N log N)`).
    pub fn build(data: &Dataset) -> Self {
        let per_attr = data.columns().iter().map(|c| argsort(c)).collect();
        Self { per_attr, n: data.n() }
    }

    /// Number of objects indexed.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of attributes indexed.
    pub fn d(&self) -> usize {
        self.per_attr.len()
    }

    /// The ascending-order object indices of attribute `j`: `attr(j)[0]` is
    /// the object with the smallest value in attribute `j`.
    pub fn attr(&self, j: usize) -> &[u32] {
        &self.per_attr[j]
    }

    /// A contiguous index block `[start, start + len)` of attribute `j` — the
    /// object ids whose attribute-`j` values fall in one adaptive slice
    /// condition.
    ///
    /// # Panics
    /// Panics if the window exceeds `N`.
    pub fn block(&self, j: usize, start: usize, len: usize) -> &[u32] {
        &self.per_attr[j][start..start + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_order_per_attribute() {
        let data = Dataset::from_columns(vec![
            vec![3.0, 1.0, 2.0],
            vec![0.5, 0.7, 0.1],
        ]);
        let idx = data.sorted_indices();
        assert_eq!(idx.n(), 3);
        assert_eq!(idx.d(), 2);
        assert_eq!(idx.attr(0), &[1, 2, 0]);
        assert_eq!(idx.attr(1), &[2, 0, 1]);
    }

    #[test]
    fn blocks_are_windows_of_sorted_order() {
        let data = Dataset::from_columns(vec![vec![5.0, 4.0, 3.0, 2.0, 1.0]]);
        let idx = data.sorted_indices();
        assert_eq!(idx.block(0, 0, 2), &[4, 3]);
        assert_eq!(idx.block(0, 3, 2), &[1, 0]);
    }

    #[test]
    fn block_values_are_contiguous_in_value_space() {
        let col = vec![0.9, 0.1, 0.5, 0.3, 0.7];
        let data = Dataset::from_columns(vec![col.clone()]);
        let idx = data.sorted_indices();
        let block = idx.block(0, 1, 3);
        let vals: Vec<f64> = block.iter().map(|&i| col[i as usize]).collect();
        // The slice selects a value-contiguous range: [0.3, 0.5, 0.7].
        assert_eq!(vals, vec![0.3, 0.5, 0.7]);
    }

    #[test]
    fn ties_keep_all_duplicates_addressable() {
        let data = Dataset::from_columns(vec![vec![1.0, 1.0, 1.0, 0.0]]);
        let idx = data.sorted_indices();
        assert_eq!(idx.attr(0)[0], 3);
        assert_eq!(idx.attr(0).len(), 4);
    }
}
