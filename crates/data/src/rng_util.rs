//! Small sampling helpers on top of `rand`, so the workspace does not need
//! the `rand_distr` crate for the handful of distributions the generators
//! use.

use rand::Rng;

/// Samples a standard normal variate with the Marsaglia polar method.
pub fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.gen::<f64>() * 2.0 - 1.0;
        let v = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `N(mean, sd²)`.
pub fn gauss_with<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * gauss(rng)
}

/// Draws `k` distinct indices from `0..n` (Floyd's algorithm, `O(k)` expected).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let v = if chosen.contains(&t) { j } else { t };
        chosen.insert(v);
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gauss_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let sample: Vec<f64> = (0..20_000).map(|_| gauss(&mut rng)).collect();
        let mean = sample.iter().sum::<f64>() / sample.len() as f64;
        let var = sample.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / sample.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gauss_with_shift_and_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let sample: Vec<f64> = (0..20_000)
            .map(|_| gauss_with(&mut rng, 5.0, 2.0))
            .collect();
        let mean = sample.iter().sum::<f64>() / sample.len() as f64;
        assert!((mean - 5.0).abs() < 0.1);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let idx = sample_indices(&mut rng, 30, 10);
            assert_eq!(idx.len(), 10);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), 10);
            assert!(idx.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn sample_indices_full_population() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut idx = sample_indices(&mut rng, 5, 5);
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn sample_indices_rejects_oversample() {
        let mut rng = StdRng::seed_from_u64(5);
        sample_indices(&mut rng, 3, 4);
    }
}
