//! Column-major numeric dataset storage.
//!
//! The HiCS algorithm is column-oriented throughout: subspace slices select
//! contiguous blocks of *per-attribute sorted indices*, statistical tests
//! consume single columns, and subspace-restricted distances touch only the
//! selected columns. A `Vec<Vec<f64>>` of columns keeps every hot loop
//! cache-friendly without the complexity of a strided matrix type.

use crate::index::{RankIndex, SortedIndices};

/// An immutable, column-major table of `N` objects with `D` real-valued
/// attributes (the database `DB` of the paper, Section III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    cols: Vec<Vec<f64>>,
    names: Vec<String>,
}

impl Dataset {
    /// Builds a dataset from columns. Attribute names are generated as
    /// `attr0..attrD`.
    ///
    /// # Panics
    /// Panics if columns are empty, have unequal lengths, or contain
    /// non-finite values.
    pub fn from_columns(cols: Vec<Vec<f64>>) -> Self {
        let names = (0..cols.len()).map(|j| format!("attr{j}")).collect();
        Self::from_columns_named(cols, names)
    }

    /// Builds a dataset from columns with explicit attribute names.
    ///
    /// # Panics
    /// Panics if shape or name counts are inconsistent or values are
    /// non-finite (HiCS' statistical tests require finite reals; impute or
    /// drop missing values before construction).
    pub fn from_columns_named(cols: Vec<Vec<f64>>, names: Vec<String>) -> Self {
        assert!(!cols.is_empty(), "dataset needs at least one attribute");
        assert_eq!(cols.len(), names.len(), "one name per attribute required");
        let n = cols[0].len();
        assert!(n > 0, "dataset needs at least one object");
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), n, "column {j} has length {} != {n}", c.len());
            assert!(
                c.iter().all(|v| v.is_finite()),
                "column {j} contains non-finite values"
            );
        }
        Self { cols, names }
    }

    /// Builds a dataset from row vectors.
    ///
    /// # Panics
    /// Panics if rows are empty or ragged, or contain non-finite values.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "dataset needs at least one object");
        let d = rows[0].len();
        assert!(d > 0, "dataset needs at least one attribute");
        let mut cols = vec![Vec::with_capacity(rows.len()); d];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), d, "row {i} has length {} != {d}", row.len());
            for (j, &v) in row.iter().enumerate() {
                cols[j].push(v);
            }
        }
        Self::from_columns(cols)
    }

    /// Number of objects `N`.
    pub fn n(&self) -> usize {
        self.cols[0].len()
    }

    /// Number of attributes `D`.
    pub fn d(&self) -> usize {
        self.cols.len()
    }

    /// The full column of attribute `j`.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.cols[j]
    }

    /// All columns.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.cols
    }

    /// Value of object `i` in attribute `j`.
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.cols[j][i]
    }

    /// Attribute names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Copies row `i` into a fresh vector (diagnostics / examples only; hot
    /// paths read columns directly).
    pub fn row(&self, i: usize) -> Vec<f64> {
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Per-attribute `(min, max)` ranges.
    pub fn ranges(&self) -> Vec<(f64, f64)> {
        self.cols
            .iter()
            .map(|c| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &v in c {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                (lo, hi)
            })
            .collect()
    }

    /// Builds the per-attribute rank index (argsort + inverse ranks) used by
    /// the adaptive subspace slices (paper Section IV-A: "we precalculate
    /// one-dimensional index structures for all attributes").
    pub fn rank_index(&self) -> RankIndex {
        RankIndex::build(self)
    }

    /// Backwards-compatible alias of [`Dataset::rank_index`].
    pub fn sorted_indices(&self) -> SortedIndices {
        self.rank_index()
    }

    /// Returns a new dataset restricted to the given attribute indices, in
    /// the given order (used by the PCA baseline and examples).
    ///
    /// # Panics
    /// Panics if any index is out of range or `attrs` is empty.
    pub fn project(&self, attrs: &[usize]) -> Dataset {
        assert!(!attrs.is_empty(), "projection needs at least one attribute");
        let cols = attrs.iter().map(|&j| self.cols[j].clone()).collect();
        let names = attrs.iter().map(|&j| self.names[j].clone()).collect();
        Self::from_columns_named(cols, names)
    }

    /// Min-max normalises every attribute to `[0, 1]` in place. Constant
    /// attributes map to `0.0`.
    ///
    /// LOF and the grid-based competitors are scale-sensitive; the paper's
    /// datasets are normalised before ranking so every attribute contributes
    /// comparably to subspace distances.
    pub fn normalize_min_max(&mut self) {
        for c in &mut self.cols {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in c.iter() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let width = hi - lo;
            if width > 0.0 {
                for v in c.iter_mut() {
                    *v = (*v - lo) / width;
                }
            } else {
                for v in c.iter_mut() {
                    *v = 0.0;
                }
            }
        }
    }

    /// Z-score standardises every attribute in place (mean 0, sd 1).
    /// Constant attributes map to `0.0`.
    pub fn normalize_z_score(&mut self) {
        for c in &mut self.cols {
            let m = hics_stats::Moments::from_slice(c);
            let mean = m.mean();
            let sd = m.population_variance().sqrt();
            if sd > 0.0 {
                for v in c.iter_mut() {
                    *v = (*v - mean) / sd;
                }
            } else {
                for v in c.iter_mut() {
                    *v = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]])
    }

    #[test]
    fn shape_and_access() {
        let d = small();
        assert_eq!(d.n(), 3);
        assert_eq!(d.d(), 2);
        assert_eq!(d.value(1, 0), 2.0);
        assert_eq!(d.value(2, 1), 30.0);
        assert_eq!(d.col(1), &[10.0, 20.0, 30.0]);
        assert_eq!(d.row(0), vec![1.0, 10.0]);
        assert_eq!(d.names(), &["attr0".to_string(), "attr1".to_string()]);
    }

    #[test]
    fn from_columns_matches_from_rows() {
        let a = small();
        let b = Dataset::from_columns(vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]]);
        assert_eq!(a, b);
    }

    #[test]
    fn ranges() {
        let d = small();
        assert_eq!(d.ranges(), vec![(1.0, 3.0), (10.0, 30.0)]);
    }

    #[test]
    fn project_reorders() {
        let d = small();
        let p = d.project(&[1, 0]);
        assert_eq!(p.col(0), &[10.0, 20.0, 30.0]);
        assert_eq!(p.names()[0], "attr1");
    }

    #[test]
    fn min_max_normalization() {
        let mut d = small();
        d.normalize_min_max();
        assert_eq!(d.col(0), &[0.0, 0.5, 1.0]);
        assert_eq!(d.col(1), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn min_max_constant_column() {
        let mut d = Dataset::from_columns(vec![vec![5.0, 5.0, 5.0]]);
        d.normalize_min_max();
        assert_eq!(d.col(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn z_score_normalization() {
        let mut d = small();
        d.normalize_z_score();
        let c = d.col(0);
        let mean: f64 = c.iter().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        let var: f64 = c.iter().map(|v| v * v).sum::<f64>() / 3.0;
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        Dataset::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        Dataset::from_columns(vec![vec![1.0, f64::NAN]]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        Dataset::from_columns(Vec::new());
    }
}
