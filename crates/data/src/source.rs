//! The dataset-source seam: one read interface over every column provider.
//!
//! The batch pipeline was written against [`Dataset`] — owned, heap-resident
//! columns. Out-of-core workloads invert that: the columns live in a
//! memory-mapped store file (`hics-store`) and the fit should read them
//! *in place* instead of cloning an N×D matrix onto the heap first.
//! [`DatasetSource`] is the common denominator: anything that can serve
//! per-attribute `f64` columns (borrowed wherever the backing storage
//! allows) plus the normalisation those values already carry.
//!
//! Consumers that sit on hot paths do not want a virtual call (or a `Cow`
//! match) per column access, so a source is gathered **once** into a
//! [`ColumnsView`] — `d` column references, borrowed straight from the
//! source's storage on every realistic platform — and the search engine
//! (`ContrastEstimator`, `SliceSampler`, `SubspaceSearch` in `hics-core`)
//! runs entirely over that view. A `Dataset` gathers into a view of plain
//! borrows; a mapped store gathers into borrows of the file's page cache;
//! only exotic platforms where the in-place `f64` cast is unsound pay a
//! per-column copy (one column at a time — never the full matrix).

use crate::dataset::Dataset;
use crate::model::{NormKind, NormParam};
use std::borrow::Cow;

/// A provider of column-major `f64` data: the seam between the fit pipeline
/// and whatever holds the bytes (owned [`Dataset`], mmap-backed store, …).
///
/// Implementations must serve columns of equal length `n ≥ 1`, with every
/// value finite, and `names().len() == d()`.
pub trait DatasetSource: Sync {
    /// Number of objects `N`.
    fn n(&self) -> usize;

    /// Number of attributes `D`.
    fn d(&self) -> usize;

    /// Attribute names.
    fn names(&self) -> &[String];

    /// Column `j`, borrowed from the backing storage whenever possible.
    ///
    /// # Panics
    /// Panics if `j >= d`.
    fn column(&self, j: usize) -> Cow<'_, [f64]>;

    /// The normalisation already applied to the stored values (identity for
    /// raw data). A fit over a source records this transform in the model
    /// artifact so raw query points map into the trained value space.
    fn norm_kind(&self) -> NormKind {
        NormKind::None
    }

    /// Per-attribute parameters of [`DatasetSource::norm_kind`].
    fn norm_params(&self) -> Cow<'_, [NormParam]> {
        Cow::Owned(vec![NormParam::IDENTITY; self.d()])
    }
}

impl DatasetSource for Dataset {
    fn n(&self) -> usize {
        Dataset::n(self)
    }

    fn d(&self) -> usize {
        Dataset::d(self)
    }

    fn names(&self) -> &[String] {
        Dataset::names(self)
    }

    fn column(&self, j: usize) -> Cow<'_, [f64]> {
        Cow::Borrowed(self.col(j))
    }
}

/// A source gathered into directly addressable columns: the form the search
/// engine's hot loops consume (`&[f64]` per attribute, no per-access
/// dispatch). Gathering borrows wherever the source can serve borrowed
/// columns — for a [`Dataset`] or a little-endian memory map that is every
/// column, so building a view is O(d) pointer work, not a data copy.
#[derive(Debug, Clone)]
pub struct ColumnsView<'a> {
    cols: Vec<Cow<'a, [f64]>>,
    names: &'a [String],
}

impl<'a> ColumnsView<'a> {
    /// Gathers a source into a view.
    ///
    /// # Panics
    /// Panics if the source serves no columns or ragged columns.
    pub fn from_source<S: DatasetSource + ?Sized>(source: &'a S) -> Self {
        let cols: Vec<Cow<'a, [f64]>> = (0..source.d()).map(|j| source.column(j)).collect();
        assert!(!cols.is_empty(), "source has no columns");
        let n = cols[0].len();
        assert!(n > 0, "source has no rows");
        assert!(
            cols.iter().all(|c| c.len() == n),
            "source serves ragged columns"
        );
        Self {
            cols,
            names: source.names(),
        }
    }

    /// A view borrowing a dataset's columns directly.
    pub fn from_dataset(data: &'a Dataset) -> Self {
        Self::from_source(data)
    }

    /// Number of objects `N`.
    pub fn n(&self) -> usize {
        self.cols[0].len()
    }

    /// Number of attributes `D`.
    pub fn d(&self) -> usize {
        self.cols.len()
    }

    /// Attribute names.
    pub fn names(&self) -> &[String] {
        self.names
    }

    /// Column `j`.
    ///
    /// # Panics
    /// Panics if `j >= d`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.cols[j]
    }

    /// All columns in attribute order.
    pub fn iter_cols(&self) -> impl Iterator<Item = &[f64]> {
        self.cols.iter().map(|c| c.as_ref())
    }

    /// Whether every column is served borrowed (no per-column copy was
    /// needed) — true on every little-endian platform for both datasets and
    /// mapped stores.
    pub fn is_fully_borrowed(&self) -> bool {
        self.cols.iter().all(|c| matches!(c, Cow::Borrowed(_)))
    }

    /// Copies the view into an owned [`Dataset`] (tests / small data only —
    /// the point of the view is to avoid exactly this on large data).
    pub fn materialize(&self) -> Dataset {
        Dataset::from_columns_named(
            self.cols.iter().map(|c| c.to_vec()).collect(),
            self.names.to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::from_columns_named(
            vec![vec![1.0, 2.0, 3.0], vec![6.0, 5.0, 4.0]],
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn dataset_source_serves_borrowed_columns() {
        let d = data();
        assert_eq!(DatasetSource::n(&d), 3);
        assert_eq!(DatasetSource::d(&d), 2);
        assert!(matches!(d.column(1), Cow::Borrowed(_)));
        assert_eq!(d.column(1).as_ref(), d.col(1));
        assert_eq!(d.norm_kind(), NormKind::None);
        assert_eq!(d.norm_params().as_ref(), &[NormParam::IDENTITY; 2]);
    }

    #[test]
    fn view_gathers_without_copying() {
        let d = data();
        let view = ColumnsView::from_dataset(&d);
        assert_eq!(view.n(), 3);
        assert_eq!(view.d(), 2);
        assert!(view.is_fully_borrowed());
        assert_eq!(view.col(0), d.col(0));
        assert_eq!(view.names(), d.names());
        assert_eq!(view.materialize(), d);
        let cols: Vec<&[f64]> = view.iter_cols().collect();
        assert_eq!(cols, vec![d.col(0), d.col(1)]);
    }
}
