//! # hics-data — dataset substrate for the HiCS reproduction
//!
//! * [`dataset`] — column-major numeric datasets with normalisation.
//! * [`index`] — per-attribute rank indices (argsort + inverse) for adaptive
//!   subspace slices and value-window queries.
//! * [`bitset`] — `u64`-word slice masks: the selection substrate of the
//!   rank-centric slice engine.
//! * [`csv`] — minimal CSV I/O with optional label columns.
//! * [`arff`] — reader for the Weka ARFF format the original HiCS
//!   repeatability datasets ship in.
//! * [`synth`] — the paper's synthetic workload generator (Section V-A).
//! * [`toy`] — Figure 2 (motivation) and Figure 3 (counterexample) datasets.
//! * [`realworld`] — proxy generators for the eight UCI benchmarks
//!   (Fig. 11); see DESIGN.md §3 for the substitution rationale.
//! * [`model`] — the trained-model artifact (versioned binary save/load of
//!   columns, rank index, subspaces and scorer config) behind `hics fit` /
//!   `hics score` / `hics serve`.
//! * [`artifact`] — zero-copy (memory-mapped) access to a model artifact:
//!   validated borrowed column views instead of heap materialisation.
//! * [`error`] — the workspace-wide typed [`HicsError`] with artifact
//!   section/offset context and CLI exit-code mapping.
//! * [`source`] — the [`DatasetSource`] seam + [`ColumnsView`]: one read
//!   interface over owned datasets and mmap-backed column stores, so the
//!   fit pipeline never has to materialise the training matrix.
//! * [`manifest`] — the sharded-model manifest (version-3 artifact
//!   envelope referencing per-shard artifacts) behind `hics fit --shards`.
//! * [`route`] — the per-shard backend placement table (`hics route`):
//!   which serving replicas hold which manifest shard.
//! * [`mmap`] — shared read-only byte storage (memory map / 8-aligned
//!   heap) under every mmap-able on-disk format.
//! * [`rng_util`] — Gaussian sampling and distinct-index helpers.

#![warn(missing_docs)]

pub mod arff;
pub mod artifact;
pub mod bitset;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod index;
pub mod manifest;
pub mod mmap;
pub mod model;
pub mod realworld;
pub mod rng_util;
pub mod route;
pub mod source;
pub mod synth;
pub mod toy;

pub use artifact::ModelArtifact;
pub use bitset::SliceMask;
pub use dataset::Dataset;
pub use error::{ArtifactSection, HicsError};
pub use index::{RankIndex, SortedIndices};
pub use manifest::{PartitionKind, ShardAggregation, ShardEntry, ShardManifest};
pub use model::{
    peek_artifact_version, AggregationKind, HicsModel, ModelSubspace, NormKind, NormParam,
    ScorerKind, ScorerSpec,
};
pub use realworld::{RealWorldSpec, UciProxy};
pub use route::RouteTable;
pub use source::{ColumnsView, DatasetSource};
pub use synth::{LabeledDataset, SyntheticConfig};
