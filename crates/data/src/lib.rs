//! # hics-data — dataset substrate for the HiCS reproduction
//!
//! * [`dataset`] — column-major numeric datasets with normalisation.
//! * [`index`] — per-attribute sorted indices for adaptive subspace slices.
//! * [`csv`] — minimal CSV I/O with optional label columns.
//! * [`arff`] — reader for the Weka ARFF format the original HiCS
//!   repeatability datasets ship in.
//! * [`synth`] — the paper's synthetic workload generator (Section V-A).
//! * [`toy`] — Figure 2 (motivation) and Figure 3 (counterexample) datasets.
//! * [`realworld`] — proxy generators for the eight UCI benchmarks
//!   (Fig. 11); see DESIGN.md §3 for the substitution rationale.
//! * [`rng_util`] — Gaussian sampling and distinct-index helpers.

#![warn(missing_docs)]

pub mod arff;
pub mod csv;
pub mod dataset;
pub mod index;
pub mod realworld;
pub mod rng_util;
pub mod synth;
pub mod toy;

pub use dataset::Dataset;
pub use index::SortedIndices;
pub use realworld::{RealWorldSpec, UciProxy};
pub use synth::{LabeledDataset, SyntheticConfig};
