//! The route table behind `hics route`: which network backends serve
//! which shard of a sharded fit.
//!
//! A sharded manifest ([`crate::manifest::ShardManifest`]) describes the
//! *model* side of an ensemble — `S` per-shard artifacts and the fold
//! that combines their scores. The route table is the *placement* side:
//! for each of those `S` shards, the addresses of one or more `hics
//! serve` backends (replicas) holding that shard's artifact. The router
//! queries one replica per shard and folds the answers with the
//! manifest's aggregation, so table order must match manifest shard
//! order.
//!
//! # Formats
//!
//! On disk, one line per shard in shard order; replicas of a shard are
//! separated by `|`; blank lines and `#` comments are skipped:
//!
//! ```text
//! # shard 0 has a hot standby
//! 10.0.0.1:7878|10.0.0.4:7878
//! 10.0.0.2:7878
//! 10.0.0.3:7878
//! ```
//!
//! Inline (the `--replicas` flag), the same replica syntax with `,`
//! between shards: `10.0.0.1:7878|10.0.0.4:7878,10.0.0.2:7878,…`.

use crate::manifest::ShardManifest;
use std::path::Path;

/// Per-shard backend placement: `shards[i]` lists the replica addresses
/// serving shard `i`, in preference order (the router tries earlier
/// replicas first and hedges/retries onto later ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTable {
    shards: Vec<Vec<String>>,
}

impl RouteTable {
    /// Parses the on-disk format (see the module docs).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut shards = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            shards.push(Self::parse_replicas(line, i + 1)?);
        }
        if shards.is_empty() {
            return Err("route table lists no shards".into());
        }
        Ok(Self { shards })
    }

    /// Parses the inline `--replicas` spec: `,` separates shards, `|`
    /// separates replicas within a shard.
    pub fn parse_inline(spec: &str) -> Result<Self, String> {
        let mut shards = Vec::new();
        for (i, group) in spec.split(',').enumerate() {
            shards.push(Self::parse_replicas(group.trim(), i + 1)?);
        }
        Ok(Self { shards })
    }

    fn parse_replicas(group: &str, shard_1based: usize) -> Result<Vec<String>, String> {
        let replicas: Vec<String> = group
            .split('|')
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .map(str::to_string)
            .collect();
        if replicas.is_empty() {
            return Err(format!("shard {} lists no replicas", shard_1based - 1));
        }
        for r in &replicas {
            if !r.contains(':') {
                return Err(format!(
                    "replica {r:?} (shard {}) is not host:port",
                    shard_1based - 1
                ));
            }
        }
        Ok(replicas)
    }

    /// Reads and parses the on-disk format.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading route table {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Number of shards the table places.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Replica addresses for shard `i`, in preference order.
    pub fn replicas(&self, shard: usize) -> &[String] {
        &self.shards[shard]
    }

    /// All placements, in shard order.
    pub fn iter(&self) -> impl Iterator<Item = &[String]> {
        self.shards.iter().map(Vec::as_slice)
    }

    /// Checks the table covers exactly the manifest's shards — the fold
    /// is positional, so a count mismatch would silently score the wrong
    /// ensemble.
    pub fn validate_against(&self, manifest: &ShardManifest) -> Result<(), String> {
        if self.shards.len() != manifest.shards.len() {
            return Err(format!(
                "route table places {} shards but the manifest has {}",
                self.shards.len(),
                manifest.shards.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{PartitionKind, ShardAggregation, ShardEntry};

    #[test]
    fn parses_files_with_comments_replicas_and_blank_lines() {
        let table = RouteTable::parse(
            "# fleet\n10.0.0.1:7878 | 10.0.0.4:7878\n\n10.0.0.2:7878 # solo\n10.0.0.3:7878\n",
        )
        .unwrap();
        assert_eq!(table.shard_count(), 3);
        assert_eq!(table.replicas(0), ["10.0.0.1:7878", "10.0.0.4:7878"]);
        assert_eq!(table.replicas(1), ["10.0.0.2:7878"]);
        assert_eq!(table.replicas(2), ["10.0.0.3:7878"]);
    }

    #[test]
    fn parses_inline_specs_with_the_same_replica_syntax() {
        let inline = RouteTable::parse_inline("a:1|b:2,c:3,d:4").unwrap();
        assert_eq!(inline.shard_count(), 3);
        assert_eq!(inline.replicas(0), ["a:1", "b:2"]);
        let file = RouteTable::parse("a:1|b:2\nc:3\nd:4\n").unwrap();
        assert_eq!(inline, file);
    }

    #[test]
    fn rejects_empty_tables_empty_shards_and_bare_hosts() {
        assert!(RouteTable::parse("# only comments\n").is_err());
        assert!(RouteTable::parse_inline("a:1,,b:2").is_err());
        let err = RouteTable::parse("localhost\n").unwrap_err();
        assert!(err.contains("host:port"), "{err}");
    }

    #[test]
    fn validates_shard_count_against_the_manifest() {
        let manifest = ShardManifest {
            total_n: 10,
            d: 2,
            aggregation: ShardAggregation::Mean,
            partition: PartitionKind::Contiguous,
            shards: vec![
                ShardEntry {
                    file: "a.hics".into(),
                    n: 5,
                },
                ShardEntry {
                    file: "b.hics".into(),
                    n: 5,
                },
            ],
        };
        let ok = RouteTable::parse("a:1\nb:2\n").unwrap();
        assert!(ok.validate_against(&manifest).is_ok());
        let short = RouteTable::parse("a:1\n").unwrap();
        let err = short.validate_against(&manifest).unwrap_err();
        assert!(
            err.contains("places 1 shards but the manifest has 2"),
            "{err}"
        );
    }
}
