//! Zero-copy access to a model artifact: the bytes stay where they are
//! (ideally a memory map of the file), and column views are served borrowed
//! straight out of them.
//!
//! [`HicsModel::load`] materialises every section into owned vectors — the
//! right call for the offline pipeline, which mutates nothing but reads
//! everything many times. Serving wants the opposite trade: a
//! [`crate::model::HicsModel`]-shaped *view* over the file so that loading a
//! multi-gigabyte artifact costs one `mmap` plus one validation pass, and
//! the column payload is shared page cache instead of private heap —
//! across processes, and across the generations a hot-reloading server
//! keeps mapped (consumers may still gather working copies of the columns
//! they actually use; see `QueryEngine::from_artifact` in `hics-outlier`).
//!
//! The artifact format was designed for this from day one: every section
//! starts on an 8-byte boundary from the start of the file (see the format
//! table in [`crate::model`]), and a memory map is page-aligned, so the
//! `d × n × f64` columns section can be reinterpreted as `&[f64]` slices
//! in place — no parse, no copy. [`ModelArtifact::column`] hands those
//! slices out as [`Cow`]s: borrowed on the aligned little-endian fast path
//! (always, in practice), owned only on exotic platforms where the cast is
//! unsound.
//!
//! Validation is **identical** to the heap path: both run
//! `ArtifactLayout::parse`, so a byte stream is accepted by
//! [`ModelArtifact::open_mmap`] exactly when [`HicsModel::from_bytes`]
//! accepts it, and every value a borrowed column view can yield was already
//! checked finite.

use crate::error::HicsError;
use crate::mmap::{AlignedBytes, ByteStorage};
use crate::model::{
    f64_at, AggregationKind, ArtifactLayout, HicsModel, ModelIndex, ModelSubspace, NormKind,
    NormParam, ScorerSpec,
};
use std::borrow::Cow;
use std::path::Path;

/// A validated model artifact over in-place bytes (memory-mapped file or
/// 8-aligned heap buffer), serving borrowed column views.
#[derive(Debug)]
pub struct ModelArtifact {
    storage: ByteStorage,
    layout: ArtifactLayout,
}

impl ModelArtifact {
    /// Memory-maps and validates the artifact at `path`. The column payload
    /// is *not* copied: [`ModelArtifact::column`] borrows straight from the
    /// map. On platforms without `mmap` this transparently falls back to an
    /// aligned heap read with the same semantics.
    pub fn open_mmap(path: &Path) -> Result<Self, HicsError> {
        let file = std::fs::File::open(path).map_err(|e| HicsError::io_path("opening", path, e))?;
        let len = file
            .metadata()
            .map_err(|e| HicsError::io_path("inspecting", path, e))?
            .len();
        let len = usize::try_from(len).map_err(|_| {
            HicsError::InvalidInput(format!("{} exceeds the address space", path.display()))
        })?;
        if len == 0 {
            // mmap(2) rejects zero-length maps; an empty file is just a
            // truncated artifact.
            return Err(ArtifactLayout::parse(&[]).expect_err("empty artifact"));
        }
        let storage = ByteStorage::map_file(&file, len)
            .map_err(|e| HicsError::io_path("memory-mapping", path, e))?;
        let layout = ArtifactLayout::parse(storage.as_slice())?;
        Ok(Self { storage, layout })
    }

    /// Validates an artifact from in-memory bytes, copying them into an
    /// 8-aligned heap buffer so column views still borrow.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, HicsError> {
        let aligned = AlignedBytes::copy_from(bytes);
        let layout = ArtifactLayout::parse(aligned.as_slice())?;
        Ok(Self {
            storage: ByteStorage::Heap(aligned),
            layout,
        })
    }

    /// Whether the bytes are a live memory map of the artifact file (as
    /// opposed to the aligned heap fallback).
    pub fn is_mmap(&self) -> bool {
        self.storage.is_mmap()
    }

    /// The raw validated artifact bytes.
    pub fn bytes(&self) -> &[u8] {
        self.storage.as_slice()
    }

    /// Decoded format version (1 or 2).
    pub fn version(&self) -> u32 {
        self.layout.version
    }

    /// The artifact's stored FNV-1a checksum (already validated against the
    /// bytes at parse time) — a stable identity of these exact bytes, used
    /// to bind derived sidecar files to the artifact they were computed
    /// from.
    pub fn checksum(&self) -> u64 {
        u64::from_le_bytes(self.bytes()[64..72].try_into().expect("8 bytes"))
    }

    /// Number of trained objects `N`.
    pub fn n(&self) -> usize {
        self.layout.n
    }

    /// Number of attributes `D`.
    pub fn d(&self) -> usize {
        self.layout.d
    }

    /// Attribute names.
    pub fn names(&self) -> &[String] {
        &self.layout.names
    }

    /// The normalisation kind applied at fit time.
    pub fn norm_kind(&self) -> NormKind {
        self.layout.norm_kind
    }

    /// Per-attribute normalisation parameters.
    pub fn norm_params(&self) -> &[NormParam] {
        &self.layout.norm
    }

    /// The scorer configuration.
    pub fn scorer(&self) -> ScorerSpec {
        self.layout.scorer
    }

    /// The score aggregation.
    pub fn aggregation(&self) -> AggregationKind {
        self.layout.aggregation
    }

    /// The selected subspaces, best first.
    pub fn subspaces(&self) -> &[ModelSubspace] {
        &self.layout.subspaces
    }

    /// The prebuilt neighbor index of a version-2 artifact.
    pub fn index(&self) -> Option<&ModelIndex> {
        self.layout.index.as_ref()
    }

    /// Column `j` of the trained data, borrowed from the artifact bytes
    /// whenever the in-place cast is sound (8-aligned little-endian — every
    /// map and every [`ModelArtifact::from_bytes`] buffer qualifies) and
    /// copied otherwise.
    ///
    /// # Panics
    /// Panics if `j >= d`.
    pub fn column(&self, j: usize) -> Cow<'_, [f64]> {
        assert!(j < self.d(), "column {j} out of range");
        let n = self.layout.n;
        let start = self.layout.columns_offset + j * n * 8;
        let bytes = &self.bytes()[start..start + n * 8];
        if cfg!(target_endian = "little")
            && (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>())
        {
            // SAFETY: the range is in bounds (parse validated the section),
            // the pointer is 8-aligned (just checked), every f64 bit
            // pattern is a valid value (and parse checked them finite), and
            // the storage is immutable for `self`'s lifetime.
            Cow::Borrowed(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, n) })
        } else {
            Cow::Owned((0..n).map(|i| f64_at(bytes, i * 8)).collect())
        }
    }

    /// Value of object `i` in attribute `j`, read in place.
    ///
    /// # Panics
    /// Panics if `i >= n` or `j >= d`.
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n() && j < self.d(), "({i}, {j}) out of range");
        f64_at(
            self.bytes(),
            self.layout.columns_offset + (j * self.layout.n + i) * 8,
        )
    }

    /// Materialises the artifact into an owned [`HicsModel`] (exactly what
    /// [`HicsModel::from_bytes`] on the same bytes returns).
    pub fn to_model(&self) -> HicsModel {
        HicsModel::from_layout(&self.layout, self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{apply_normalization, ScorerKind};
    use crate::synth::SyntheticConfig;

    fn sample_model() -> HicsModel {
        let g = SyntheticConfig::new(60, 4).with_seed(12).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::MinMax);
        HicsModel::new(
            data,
            NormKind::MinMax,
            norm,
            vec![
                ModelSubspace {
                    dims: vec![0, 2],
                    contrast: 0.7,
                },
                ModelSubspace {
                    dims: vec![1, 2, 3],
                    contrast: 0.3,
                },
            ],
            ScorerSpec {
                kind: ScorerKind::Lof,
                k: 5,
            },
            AggregationKind::Average,
        )
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hics-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mmap_open_matches_heap_load_exactly() {
        let model = sample_model();
        let path = temp_path("mmap-roundtrip.hicsmodel");
        model.save(&path).expect("save");
        let artifact = ModelArtifact::open_mmap(&path).expect("open_mmap");
        assert!(cfg!(not(unix)) || artifact.is_mmap());
        assert_eq!(artifact.n(), model.n());
        assert_eq!(artifact.d(), model.d());
        assert_eq!(artifact.names(), model.dataset().names());
        assert_eq!(artifact.norm_kind(), model.norm_kind());
        assert_eq!(artifact.norm_params(), model.norm_params());
        assert_eq!(artifact.scorer(), model.scorer());
        assert_eq!(artifact.subspaces(), model.subspaces());
        assert_eq!(artifact.to_model(), model);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn columns_are_borrowed_and_bitwise_equal() {
        let model = sample_model();
        let path = temp_path("mmap-columns.hicsmodel");
        model.save(&path).expect("save");
        let artifact = ModelArtifact::open_mmap(&path).expect("open_mmap");
        for j in 0..model.d() {
            let col = artifact.column(j);
            assert!(
                matches!(col, Cow::Borrowed(_)),
                "column {j} was copied, not borrowed"
            );
            assert_eq!(col.as_ref(), model.dataset().col(j), "column {j}");
            for i in (0..model.n()).step_by(7) {
                assert_eq!(artifact.value(i, j), model.dataset().value(i, j));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_from_bytes_serves_the_same_views() {
        let model = sample_model();
        let bytes = model.to_bytes();
        let artifact = ModelArtifact::from_bytes(&bytes).expect("from_bytes");
        assert!(!artifact.is_mmap());
        assert_eq!(artifact.bytes(), &bytes[..]);
        for j in 0..model.d() {
            let col = artifact.column(j);
            assert!(matches!(col, Cow::Borrowed(_)), "aligned heap borrows");
            assert_eq!(col.as_ref(), model.dataset().col(j));
        }
        assert_eq!(artifact.to_model(), model);
    }

    #[test]
    fn truncated_map_is_rejected_like_the_heap_path() {
        let model = sample_model();
        let bytes = model.to_bytes();
        let path = temp_path("mmap-truncated.hicsmodel");
        for cut in [0usize, 40, 72, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let mapped = ModelArtifact::open_mmap(&path);
            let heap = HicsModel::from_bytes(&bytes[..cut]);
            assert!(mapped.is_err(), "cut {cut} mapped fine");
            assert!(heap.is_err(), "cut {cut} heap-loaded fine");
            // Same failure class either way.
            assert_eq!(
                std::mem::discriminant(&mapped.unwrap_err()),
                std::mem::discriminant(&heap.unwrap_err()),
                "cut {cut}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_map_is_a_checksum_mismatch() {
        let model = sample_model();
        let mut bytes = model.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let path = temp_path("mmap-corrupt.hicsmodel");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ModelArtifact::open_mmap(&path),
            Err(HicsError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    /// Re-saving over a path that is currently memory-mapped must leave the
    /// live map untouched (save goes through temp + rename, so the old
    /// inode survives) — the hot-reload workflow depends on it: refit to
    /// the same path, then `/admin/reload`, while the old map still serves.
    #[test]
    fn resaving_over_a_mapped_artifact_leaves_the_map_intact() {
        let first = sample_model();
        let path = temp_path("resave-under-map.hicsmodel");
        first.save(&path).expect("save first");
        let mapped = ModelArtifact::open_mmap(&path).expect("open first");
        let before = mapped.bytes().to_vec();

        // A different model (different seed → different bytes) over the
        // same path.
        let g = SyntheticConfig::new(70, 4).with_seed(99).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::MinMax);
        let second = HicsModel::new(
            data,
            NormKind::MinMax,
            norm,
            vec![ModelSubspace {
                dims: vec![0, 3],
                contrast: 0.4,
            }],
            ScorerSpec::default(),
            AggregationKind::Average,
        );
        second.save(&path).expect("save second over mapped path");

        // The live map still reads the first artifact, byte for byte.
        assert_eq!(mapped.bytes(), &before[..]);
        assert_eq!(mapped.to_model(), first);
        // A fresh open sees the second.
        let fresh = ModelArtifact::open_mmap(&path).expect("open second");
        assert_eq!(fresh.to_model(), second);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let missing = std::env::temp_dir().join("hics-artifact-missing.hicsmodel");
        assert!(matches!(
            ModelArtifact::open_mmap(&missing),
            Err(HicsError::Io { .. })
        ));
    }
}
