//! Proxy generators for the eight UCI benchmark datasets of the paper's
//! real-world evaluation (Fig. 11).
//!
//! **Substitution note (see DESIGN.md §3).** The original UCI files are not
//! available in this offline environment. Each proxy reproduces the
//! *dimensions* of the original benchmark — object count `N`, attribute
//! count `D` and outlier (minority-class) count — and plants a data
//! structure that poses the same algorithmic challenge: inliers form
//! correlated low-dimensional cluster structure plus irrelevant attributes;
//! outliers are a mixture of
//!
//! * **non-trivial subspace outliers** — hidden inside one correlated block,
//!   invisible in every single attribute (these are what subspace search
//!   must find), and
//! * **diffuse full-space outliers** — scattered uniformly, which full-space
//!   LOF can already detect (these keep the full-space baseline competitive,
//!   as in the paper where LOF reaches 86–94 % AUC on several datasets).
//!
//! A per-dataset `difficulty` profile (separation, noise attributes,
//! non-trivial fraction) is tuned so that *hard* datasets in the paper
//! (Breast, Arrhythmia, Diabetes — AUC ≈ 56–72 %) remain hard and *easy*
//! ones (Ann-Thyroid, Breast-Diagnostic, Pendigits — AUC ≥ 94 %) remain
//! easy. Absolute AUC values are not expected to match the paper; the
//! relative ordering of the methods is (EXPERIMENTS.md records both).

// Index-based loops are the clearer idiom for the columnar generators.
#![allow(clippy::needless_range_loop)]

use crate::dataset::Dataset;
use crate::rng_util::{gauss_with, sample_indices};
use crate::synth::{
    clamp01, euclid, partition_block_sizes, well_separated_centers, LabeledDataset,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Static description of one real-world benchmark and its proxy profile.
#[derive(Debug, Clone, Copy)]
pub struct RealWorldSpec {
    /// Dataset name as used in the paper's Fig. 11.
    pub name: &'static str,
    /// Object count of the original benchmark.
    pub n: usize,
    /// Attribute count of the original benchmark.
    pub d: usize,
    /// Outlier count (minority class size) of the original benchmark.
    pub outliers: usize,
    /// Fraction of outliers planted as non-trivial subspace outliers (the
    /// rest are diffuse full-space outliers).
    pub nontrivial_fraction: f64,
    /// Distance (in cluster-sd units, scaled by √d) separating subspace
    /// outliers from cluster cores — lower = harder.
    pub separation: f64,
    /// Number of irrelevant uniform-noise attributes in the proxy.
    pub noise_dims: usize,
    /// Cluster standard deviation of the inlier population.
    pub cluster_sd: f64,
}

/// The eight UCI benchmarks of the paper, as proxy generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UciProxy {
    /// Thyroid disease, ANN version (3772 × 21, 284 outliers).
    AnnThyroid,
    /// Cardiac arrhythmia (452 × 274, 66 outliers).
    Arrhythmia,
    /// Breast Cancer Wisconsin, original (683 × 9, 239 outliers).
    Breast,
    /// Breast Cancer Wisconsin, diagnostic (569 × 30, 212 outliers).
    BreastDiagnostic,
    /// Pima Indians diabetes (768 × 8, 268 outliers).
    Diabetes,
    /// Glass identification, class 6 as outliers (214 × 9, 9 outliers).
    Glass,
    /// Ionosphere radar returns (351 × 33, 126 outliers).
    Ionosphere,
    /// Pen-based digit recognition, digit 0 downsampled to 10 %
    /// (9963 × 16, 114 outliers).
    Pendigits,
}

impl UciProxy {
    /// All eight benchmarks in the paper's table order.
    pub const ALL: [UciProxy; 8] = [
        UciProxy::AnnThyroid,
        UciProxy::Arrhythmia,
        UciProxy::Breast,
        UciProxy::BreastDiagnostic,
        UciProxy::Diabetes,
        UciProxy::Glass,
        UciProxy::Ionosphere,
        UciProxy::Pendigits,
    ];

    /// The benchmark's dimensions and proxy difficulty profile.
    pub fn spec(&self) -> RealWorldSpec {
        match self {
            UciProxy::AnnThyroid => RealWorldSpec {
                name: "Ann-Thyroid",
                n: 3772,
                d: 21,
                outliers: 284,
                nontrivial_fraction: 0.5,
                separation: 5.0,
                noise_dims: 9,
                cluster_sd: 0.04,
            },
            UciProxy::Arrhythmia => RealWorldSpec {
                name: "Arrhythmia",
                n: 452,
                d: 274,
                outliers: 66,
                nontrivial_fraction: 0.4,
                separation: 1.6,
                noise_dims: 230,
                cluster_sd: 0.08,
            },
            UciProxy::Breast => RealWorldSpec {
                name: "Breast",
                n: 683,
                d: 9,
                outliers: 239,
                nontrivial_fraction: 0.35,
                separation: 1.2,
                noise_dims: 3,
                cluster_sd: 0.10,
            },
            UciProxy::BreastDiagnostic => RealWorldSpec {
                name: "Breast (diagnostic)",
                n: 569,
                d: 30,
                outliers: 212,
                nontrivial_fraction: 0.5,
                separation: 4.0,
                noise_dims: 12,
                cluster_sd: 0.05,
            },
            UciProxy::Diabetes => RealWorldSpec {
                name: "Diabetes",
                n: 768,
                d: 8,
                outliers: 268,
                nontrivial_fraction: 0.35,
                separation: 1.8,
                noise_dims: 2,
                cluster_sd: 0.09,
            },
            UciProxy::Glass => RealWorldSpec {
                name: "Glass",
                n: 214,
                d: 9,
                outliers: 9,
                nontrivial_fraction: 0.5,
                separation: 2.5,
                noise_dims: 3,
                cluster_sd: 0.06,
            },
            UciProxy::Ionosphere => RealWorldSpec {
                name: "Ionosphere",
                n: 351,
                d: 33,
                outliers: 126,
                nontrivial_fraction: 0.45,
                separation: 2.8,
                noise_dims: 15,
                cluster_sd: 0.06,
            },
            UciProxy::Pendigits => RealWorldSpec {
                name: "Pendigits",
                n: 9963,
                d: 16,
                outliers: 114,
                nontrivial_fraction: 0.55,
                separation: 4.5,
                noise_dims: 4,
                cluster_sd: 0.04,
            },
        }
    }

    /// Generates the proxy at full size.
    pub fn generate(&self, seed: u64) -> LabeledDataset {
        self.generate_scaled(seed, 1.0)
    }

    /// Generates the proxy with object counts scaled by `scale ∈ (0, 1]`
    /// (attribute count unchanged) — useful for quick experiment runs.
    ///
    /// # Panics
    /// Panics if `scale` is outside `(0, 1]`.
    pub fn generate_scaled(&self, seed: u64, scale: f64) -> LabeledDataset {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0,1], got {scale}"
        );
        let spec = self.spec();
        let n = ((spec.n as f64 * scale) as usize).max(60);
        let outliers = ((spec.outliers as f64 * scale) as usize).clamp(1, n / 2);
        generate_proxy(&spec, n, outliers, seed)
    }
}

/// Core proxy generator shared by all eight benchmarks.
fn generate_proxy(spec: &RealWorldSpec, n: usize, n_outliers: usize, seed: u64) -> LabeledDataset {
    let mut rng = StdRng::seed_from_u64(seed ^ fxhash(spec.name));
    let d = spec.d;
    let correlated = d - spec.noise_dims;
    let block_sizes = partition_block_sizes(correlated, (2, 5), &mut rng);

    // Cluster geometry per block.
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut centers_per_block: Vec<Vec<Vec<f64>>> = Vec::new();
    let mut attr = 0usize;
    for &bd in &block_sizes {
        blocks.push((attr..attr + bd).collect());
        attr += bd;
        let k = rng.gen_range(2..=4);
        centers_per_block.push(well_separated_centers(
            bd,
            k,
            8.0 * spec.cluster_sd,
            &mut rng,
        ));
    }

    // Inlier population.
    let mut cols = vec![vec![0.0f64; n]; d];
    for i in 0..n {
        for (block, centers) in blocks.iter().zip(&centers_per_block) {
            let c = &centers[rng.gen_range(0..centers.len())];
            for (b, &j) in block.iter().enumerate() {
                cols[j][i] = clamp01(gauss_with(&mut rng, c[b], spec.cluster_sd));
            }
        }
        for j in correlated..d {
            cols[j][i] = rng.gen::<f64>();
        }
    }

    // Outliers: replace a random subset of objects.
    let mut labels = vec![false; n];
    let chosen = sample_indices(&mut rng, n, n_outliers);
    for &i in &chosen {
        labels[i] = true;
        if rng.gen::<f64>() < spec.nontrivial_fraction {
            // Non-trivial: deviate inside one random correlated block only.
            let b_idx = rng.gen_range(0..blocks.len());
            let block = &blocks[b_idx];
            let centers = &centers_per_block[b_idx];
            let pos = offcluster_position(centers, spec.separation, spec.cluster_sd, &mut rng);
            for (b, &j) in block.iter().enumerate() {
                cols[j][i] = pos[b];
            }
        } else {
            // Diffuse: scattered across the full space (including noise dims).
            for col in cols.iter_mut() {
                col[i] = rng.gen::<f64>();
            }
        }
    }

    let names = (0..d)
        .map(|j| format!("{}_{j}", spec.name.replace(' ', "_")))
        .collect();
    LabeledDataset {
        dataset: Dataset::from_columns_named(cols, names),
        labels,
        planted_subspaces: blocks,
    }
}

/// Rejection-samples a position marginally consistent with the clusters but
/// at least `separation · sd · √d` away from every centre.
fn offcluster_position(
    centers: &[Vec<f64>],
    separation: f64,
    sd: f64,
    rng: &mut StdRng,
) -> Vec<f64> {
    let bd = centers[0].len();
    let min_dist = separation * sd * (bd as f64).sqrt();
    let mut best: (f64, Vec<f64>) = (-1.0, vec![0.5; bd]);
    for _ in 0..5_000 {
        let pos: Vec<f64> = (0..bd)
            .map(|b| {
                let c = &centers[rng.gen_range(0..centers.len())];
                clamp01(c[b] + (rng.gen::<f64>() * 2.0 - 1.0) * 2.0 * sd)
            })
            .collect();
        let dmin = centers
            .iter()
            .map(|c| euclid(&pos, c))
            .fold(f64::INFINITY, f64::min);
        if dmin >= min_dist {
            return pos;
        }
        if dmin > best.0 {
            best = (dmin, pos);
        }
    }
    best.1
}

/// Tiny deterministic string hash so each dataset gets a distinct RNG stream
/// for the same user seed.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_have_consistent_shapes() {
        for p in UciProxy::ALL {
            let s = p.spec();
            assert!(s.outliers < s.n, "{}: outliers >= n", s.name);
            assert!(s.noise_dims + 2 <= s.d, "{}: too many noise dims", s.name);
            assert!(s.nontrivial_fraction >= 0.0 && s.nontrivial_fraction <= 1.0);
        }
    }

    #[test]
    fn scaled_generation_matches_spec_shape() {
        let g = UciProxy::Glass.generate(3);
        let s = UciProxy::Glass.spec();
        assert_eq!(g.dataset.n(), s.n);
        assert_eq!(g.dataset.d(), s.d);
        assert_eq!(g.outlier_count(), s.outliers);
    }

    #[test]
    fn downscaling_reduces_objects_not_attributes() {
        let g = UciProxy::AnnThyroid.generate_scaled(1, 0.1);
        let s = UciProxy::AnnThyroid.spec();
        assert_eq!(g.dataset.d(), s.d);
        assert!(g.dataset.n() < s.n / 5);
        assert!(g.outlier_count() >= 1);
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_datasets() {
        let a1 = UciProxy::Diabetes.generate_scaled(7, 0.3);
        let a2 = UciProxy::Diabetes.generate_scaled(7, 0.3);
        assert_eq!(a1.dataset, a2.dataset);
        // Same seed but a different dataset: distinct RNG stream → different
        // values even where shapes could overlap.
        let b = UciProxy::Breast.generate_scaled(7, 0.3);
        assert_ne!(
            (a1.dataset.n(), a1.dataset.d()),
            (b.dataset.n(), b.dataset.d())
        );
    }

    #[test]
    fn labels_mark_planted_outliers() {
        let g = UciProxy::Ionosphere.generate_scaled(5, 0.5);
        let k = g.outlier_count();
        let s = UciProxy::Ionosphere.spec();
        assert_eq!(k, (s.outliers as f64 * 0.5) as usize);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_scale() {
        UciProxy::Glass.generate_scaled(1, 0.0);
    }

    #[test]
    fn values_stay_in_unit_cube() {
        let g = UciProxy::Pendigits.generate_scaled(2, 0.05);
        for j in 0..g.dataset.d() {
            assert!(g.dataset.col(j).iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }
}
