//! Property tests for the model artifact: serialisation round-trips exactly
//! (model → bytes → model → bytes), and corrupted or truncated artifacts
//! are rejected with errors, never panics or silent misreads.

use hics_data::model::{
    AggregationKind, HicsModel, ModelIndex, ModelSubspace, NormKind, ScorerKind, ScorerSpec,
    VpNodeData, VpTreeData, VP_NONE,
};
use hics_data::{ArtifactSection, Dataset, HicsError};
use proptest::prelude::*;

/// Builds a valid model from generated raw material. Values are quantised
/// to a small grid so columns contain exact ties (the hardest case for the
/// rank index) while staying finite.
#[allow(clippy::too_many_arguments)]
fn build_model(
    n: usize,
    d: usize,
    raw: Vec<u32>,
    sub_picks: Vec<Vec<bool>>,
    scorer_code: u32,
    k: u32,
    agg_avg: bool,
    norm_code: u32,
) -> HicsModel {
    let cols: Vec<Vec<f64>> = (0..d)
        .map(|j| {
            (0..n)
                .map(|i| (raw[(j * n + i) % raw.len()] % 97) as f64 / 7.0 - 5.0)
                .collect()
        })
        .collect();
    let data = Dataset::from_columns(cols);
    let norm_kind = match norm_code % 3 {
        0 => NormKind::None,
        1 => NormKind::MinMax,
        _ => NormKind::ZScore,
    };
    let (trained, norm) = hics_data::model::apply_normalization(&data, norm_kind);
    let mut subspaces: Vec<ModelSubspace> = sub_picks
        .iter()
        .enumerate()
        .map(|(s, picks)| {
            let mut dims: Vec<usize> = (0..d).filter(|&j| picks[j % picks.len()]).collect();
            if dims.is_empty() {
                dims.push(s % d);
            }
            ModelSubspace {
                dims,
                contrast: (s as f64 + 1.0) / 10.0,
            }
        })
        .collect();
    if subspaces.is_empty() {
        subspaces.push(ModelSubspace {
            dims: vec![0],
            contrast: 0.5,
        });
    }
    let kind = match scorer_code % 3 {
        0 => ScorerKind::Lof,
        1 => ScorerKind::KnnMean,
        _ => ScorerKind::KnnKth,
    };
    HicsModel::new(
        trained,
        norm_kind,
        norm,
        subspaces,
        ScorerSpec { kind, k: k.max(1) },
        if agg_avg {
            AggregationKind::Average
        } else {
            AggregationKind::Max
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// bytes → model → bytes is the identity on canonical encodings, and
    /// model → bytes → model preserves every field.
    #[test]
    fn roundtrip_is_identity(
        n in 2usize..40,
        d in 1usize..6,
        raw in prop::collection::vec(0u32..1000, 8..40),
        sub_picks in prop::collection::vec(prop::collection::vec(any::<bool>(), 1..6), 1..5),
        scorer_code in 0u32..3,
        k in 1u32..20,
        agg_avg in any::<bool>(),
        norm_code in 0u32..3,
    ) {
        let model = build_model(n, d, raw, sub_picks, scorer_code, k, agg_avg, norm_code);
        let bytes = model.to_bytes();
        let decoded = HicsModel::from_bytes(&bytes);
        prop_assert!(decoded.is_ok(), "decode failed: {}", decoded.err().unwrap());
        let decoded = decoded.unwrap();
        prop_assert_eq!(&model, &decoded);
        // Canonical encoding: decoding and re-encoding reproduces the bytes.
        prop_assert_eq!(bytes, decoded.to_bytes());
    }

    /// Every strict prefix of a valid artifact is rejected with an error
    /// (truncation anywhere — header, sections, padding — never panics).
    #[test]
    fn truncation_anywhere_is_rejected(
        n in 2usize..20,
        d in 1usize..4,
        raw in prop::collection::vec(0u32..1000, 8..20),
        cut_seed in any::<u32>(),
    ) {
        let model = build_model(n, d, raw, vec![vec![true]], 0, 5, true, 0);
        let bytes = model.to_bytes();
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert!(HicsModel::from_bytes(&bytes[..cut]).is_err(), "prefix {cut} accepted");
    }

    /// Flipping any single byte anywhere in the artifact — header,
    /// checksum field, any section, even padding — must be rejected. The
    /// FNV-1a checksum guarantees single-byte corruption always changes
    /// the computed hash, so decoding can never silently misread.
    #[test]
    fn single_byte_corruption_anywhere_is_rejected(
        n in 2usize..20,
        d in 1usize..4,
        raw in prop::collection::vec(0u32..1000, 8..20),
        pos_seed in any::<u32>(),
        flip in 1u32..256,
    ) {
        let model = build_model(n, d, raw, vec![vec![true]], 1, 3, false, 1);
        let mut bytes = model.to_bytes();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= flip as u8;
        prop_assert!(
            HicsModel::from_bytes(&bytes).is_err(),
            "flipped byte {pos} accepted"
        );
    }
}

/// Targeted (non-property) corruption cases with exact error matching.
#[test]
fn corrupt_magic_version_and_length_have_specific_errors() {
    let model = build_model(
        10,
        3,
        (0..30).collect(),
        vec![vec![true, false]],
        0,
        4,
        true,
        2,
    );
    let good = model.to_bytes();

    let mut bad = good.clone();
    bad[3] = b'X';
    assert!(matches!(
        HicsModel::from_bytes(&bad),
        Err(HicsError::BadMagic)
    ));

    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        HicsModel::from_bytes(&bad),
        Err(HicsError::UnsupportedVersion(7))
    ));

    // Header claims more payload than the file holds.
    let mut bad = good.clone();
    let lie = (good.len() as u64).to_le_bytes();
    bad[56..64].copy_from_slice(&lie);
    assert!(matches!(
        HicsModel::from_bytes(&bad),
        Err(HicsError::Truncated { .. })
    ));

    // Trailing garbage after the declared payload.
    let mut bad = good.clone();
    bad.extend_from_slice(&[0u8; 16]);
    assert!(HicsModel::from_bytes(&bad).is_err());

    // Scorer k of zero (structural check, caught before the checksum,
    // located in the header).
    let mut bad = good.clone();
    bad[44..48].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        HicsModel::from_bytes(&bad),
        Err(HicsError::InvalidModel {
            section: ArtifactSection::Header,
            ..
        })
    ));

    // A flipped payload byte is a checksum mismatch.
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x40;
    assert!(matches!(
        HicsModel::from_bytes(&bad),
        Err(HicsError::ChecksumMismatch { .. })
    ));

    // A single-object model is structurally invalid (kNN scoring needs two
    // reference objects), even with a freshly stamped checksum.
    let mut bad = good;
    bad[16..24].copy_from_slice(&1u64.to_le_bytes());
    restamp(&mut bad);
    assert!(matches!(
        HicsModel::from_bytes(&bad),
        Err(HicsError::InvalidModel { .. })
    ));
}

/// Recomputes and writes the header checksum (FNV-1a over bytes 0..64 and
/// 72..end) so corruption tests can reach the validation *behind* it.
fn restamp(bytes: &mut [u8]) {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes[..64].iter().chain(&bytes[72..]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    bytes[64..72].copy_from_slice(&h.to_le_bytes());
}

/// The simplest structurally valid VP-tree over `n` objects: one leaf
/// holding every id. Enough to exercise the version-2 section machinery
/// without depending on the tree builder (which lives downstream in
/// `hics-outlier`).
fn single_leaf_tree(n: usize) -> VpTreeData {
    VpTreeData {
        nodes: vec![VpNodeData {
            vantage: VP_NONE,
            inner: VP_NONE,
            outer: VP_NONE,
            start: 0,
            len: n as u32,
            mu: 0.0,
        }],
        ids: (0..n as u32).collect(),
    }
}

/// A model without an index serialises as format version 1 — byte-stream
/// compatible with pre-index readers — and loads with the brute fallback
/// (`index() == None`); a model with trees serialises as version 2 and
/// round-trips the trees exactly.
#[test]
fn version_1_and_2_roundtrip_and_fall_back() {
    let mut model = build_model(
        12,
        3,
        (0..36).collect(),
        vec![vec![true, false, true]],
        0,
        3,
        true,
        0,
    );
    let v1 = model.to_bytes();
    assert_eq!(u32::from_le_bytes(v1[8..12].try_into().unwrap()), 1);
    let loaded_v1 = HicsModel::from_bytes(&v1).expect("v1 loads");
    assert!(loaded_v1.index().is_none(), "v1 falls back to brute");
    assert_eq!(loaded_v1, model);

    let trees: Vec<VpTreeData> = model
        .subspaces()
        .iter()
        .map(|_| single_leaf_tree(model.n()))
        .collect();
    model.set_index(Some(ModelIndex { trees }));
    let v2 = model.to_bytes();
    assert_eq!(u32::from_le_bytes(v2[8..12].try_into().unwrap()), 2);
    assert!(v2.len() > v1.len(), "v2 appends the index section");
    let loaded_v2 = HicsModel::from_bytes(&v2).expect("v2 loads");
    assert_eq!(loaded_v2.index(), model.index());
    assert_eq!(loaded_v2, model);
    // Canonical encodings both ways.
    assert_eq!(loaded_v1.to_bytes(), v1);
    assert_eq!(loaded_v2.to_bytes(), v2);
}

/// Truncation anywhere inside the version-2 index section is rejected —
/// as is a structurally corrupt tree hiding behind a valid checksum.
#[test]
fn index_section_truncation_and_corruption_are_rejected() {
    let mut model = build_model(10, 2, (0..20).collect(), vec![vec![true]], 1, 2, false, 1);
    let v1_len = model.to_bytes().len();
    let trees: Vec<VpTreeData> = model
        .subspaces()
        .iter()
        .map(|_| single_leaf_tree(model.n()))
        .collect();
    model.set_index(Some(ModelIndex { trees }));
    let v2 = model.to_bytes();

    // Every cut that removes part of the index section must fail loudly.
    for cut in [v1_len, v1_len + 4, v2.len() - 9, v2.len() - 4, v2.len() - 1] {
        assert!(
            HicsModel::from_bytes(&v2[..cut]).is_err(),
            "cut at {cut} of {} accepted",
            v2.len()
        );
    }

    // A duplicated leaf id (checksum freshly stamped so the corruption is
    // only visible to the tree validator) is rejected as invalid, located
    // in the index section.
    let mut bad = v2.clone();
    let ids_end = bad.len();
    let prev = bad[ids_end - 8..ids_end - 4].to_vec();
    bad[ids_end - 4..].copy_from_slice(&prev);
    restamp(&mut bad);
    match HicsModel::from_bytes(&bad) {
        Err(HicsError::InvalidModel {
            section, offset, ..
        }) => {
            assert_eq!(section, ArtifactSection::Index);
            assert!(offset >= v1_len, "offset {offset} before the section");
        }
        other => panic!("expected InvalidModel in index section, got {other:?}"),
    }

    // An unknown index kind is rejected.
    let mut bad = v2.clone();
    bad[v1_len..v1_len + 4].copy_from_slice(&9u32.to_le_bytes());
    restamp(&mut bad);
    assert!(matches!(
        HicsModel::from_bytes(&bad),
        Err(HicsError::InvalidModel {
            section: ArtifactSection::Index,
            ..
        })
    ));
}
