//! Property tests for the dataset store: rows streamed through the writer
//! (across every chunking) come back bit-identical from the mmap reader,
//! and corrupted or truncated stores are rejected with located errors,
//! never panics or silent misreads.

use hics_data::{ArtifactSection, Dataset, HicsError, NormKind};
use hics_store::{write_dataset_store, DatasetStore, StoreWriter};
use proptest::prelude::*;
use std::borrow::Cow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hics-store-proptest");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{}.hicsstore",
        std::process::id(),
        FILE_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Quantised finite values (exact ties included — the hardest case for
/// bit-equality through the normalising writer).
fn gen_value(raw: u32) -> f64 {
    (raw % 113) as f64 / 9.0 - 6.0
}

/// Writes the rows through the streaming writer and returns the bytes.
fn write_rows(rows: &[Vec<f64>], chunk_rows: usize, norm: NormKind) -> Vec<u8> {
    let path = temp_path("prop");
    let mut w = StoreWriter::create(&path, chunk_rows, norm);
    for row in rows {
        w.push_row(row).expect("push");
    }
    w.finish(None).expect("finish");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Streaming write → mmap read is bit-exact for every shape, chunking
    /// and normalisation, and the encoding is independent of the chunk
    /// size the writer happened to use.
    #[test]
    fn write_read_roundtrip_is_bit_exact(
        n in 1usize..60,
        d in 1usize..5,
        raw in prop::collection::vec(0u32..10_000, 4..40),
        chunk_rows in 1usize..70,
        norm_code in 0u32..3,
    ) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..d).map(|j| gen_value(raw[(i * d + j) % raw.len()])).collect())
            .collect();
        let norm = match norm_code {
            0 => NormKind::None,
            1 => NormKind::MinMax,
            _ => NormKind::ZScore,
        };
        let bytes = write_rows(&rows, chunk_rows, norm);
        let store = DatasetStore::from_bytes(&bytes).expect("valid store");
        prop_assert_eq!(store.n(), n);
        prop_assert_eq!(store.d(), d);
        prop_assert_eq!(store.norm_kind(), norm);
        // Reference: materialise + normalise in one shot.
        let data = Dataset::from_rows(&rows);
        let (reference, params) =
            hics_data::model::apply_normalization(&data, norm);
        prop_assert_eq!(store.norm_params(), &params[..]);
        for j in 0..d {
            let col = store.column(j);
            prop_assert!(matches!(col, Cow::Borrowed(_)), "column {} copied", j);
            prop_assert!(col.as_ref() == reference.col(j), "column {} differs", j);
        }
        // Chunking must not leak into the encoding: any other chunk size
        // yields the same bytes.
        let other_chunk = chunk_rows % n + 1;
        prop_assert_eq!(&bytes, &write_rows(&rows, other_chunk, norm));
    }

    /// Every strict prefix of a valid store is rejected with an error.
    #[test]
    fn truncation_anywhere_is_rejected(
        n in 1usize..30,
        d in 1usize..4,
        raw in prop::collection::vec(0u32..10_000, 4..20),
        cut_seed in any::<u32>(),
    ) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..d).map(|j| gen_value(raw[(i * d + j) % raw.len()])).collect())
            .collect();
        let bytes = write_rows(&rows, 7, NormKind::None);
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert!(DatasetStore::from_bytes(&bytes[..cut]).is_err(), "prefix {} accepted", cut);
    }

    /// Flipping any single byte anywhere in the store must be rejected —
    /// the FNV-1a scheme guarantees single-byte corruption always changes
    /// the checksum.
    #[test]
    fn single_byte_corruption_anywhere_is_rejected(
        n in 1usize..30,
        d in 1usize..4,
        raw in prop::collection::vec(0u32..10_000, 4..20),
        pos_seed in any::<u32>(),
        flip in 1u32..256,
    ) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..d).map(|j| gen_value(raw[(i * d + j) % raw.len()])).collect())
            .collect();
        let mut bytes = write_rows(&rows, 11, NormKind::MinMax);
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= flip as u8;
        prop_assert!(DatasetStore::from_bytes(&bytes).is_err(), "flipped byte {} accepted", pos);
    }
}

/// Recomputes and writes the header checksum so corruption tests can reach
/// the validation *behind* it.
fn restamp(bytes: &mut [u8]) {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes[..64].iter().chain(&bytes[72..]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    bytes[64..72].copy_from_slice(&h.to_le_bytes());
}

/// Targeted corruption cases with exact error-class and section/offset
/// matching.
#[test]
fn corruption_reports_section_and_offset() {
    let data = Dataset::from_columns_named(
        vec![vec![1.0, 2.0, 3.5, -1.0], vec![0.5, 0.25, 0.125, 8.0]],
        vec!["alpha".into(), "beta".into()],
    );
    let path = temp_path("targeted");
    write_dataset_store(&path, &data, 3, NormKind::None).expect("write");
    let good = std::fs::read(&path).expect("read");
    std::fs::remove_file(&path).ok();

    // Bad magic.
    let mut bad = good.clone();
    bad[2] = b'X';
    assert!(matches!(
        DatasetStore::from_bytes(&bad),
        Err(HicsError::BadMagic)
    ));

    // Future version.
    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&9u32.to_le_bytes());
    assert!(matches!(
        DatasetStore::from_bytes(&bad),
        Err(HicsError::UnsupportedVersion(9))
    ));

    // Header claims more payload than the file holds → located truncation.
    let mut bad = good.clone();
    bad[56..64].copy_from_slice(&(good.len() as u64).to_le_bytes());
    match DatasetStore::from_bytes(&bad) {
        Err(HicsError::Truncated {
            section, offset, ..
        }) => {
            assert_eq!(section, ArtifactSection::Header);
            assert_eq!(offset, 72);
        }
        other => panic!("expected located truncation, got {other:?}"),
    }

    // Flipped payload byte → checksum mismatch.
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    assert!(matches!(
        DatasetStore::from_bytes(&bad),
        Err(HicsError::ChecksumMismatch { .. })
    ));

    // A NaN smuggled into the column pages behind a fresh checksum is
    // caught by the finite check, located in the pages section.
    let mut bad = good.clone();
    let len = bad.len();
    bad[len - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
    restamp(&mut bad);
    match DatasetStore::from_bytes(&bad) {
        Err(HicsError::InvalidModel {
            section, offset, ..
        }) => {
            assert_eq!(section, ArtifactSection::Pages);
            assert!(offset > 72, "offset {offset} should be inside the payload");
        }
        other => panic!("expected InvalidModel in pages, got {other:?}"),
    }

    // Absurd header counts behind a fresh checksum are rejected without
    // allocating.
    for field_offset in [16usize, 24] {
        let mut bad = good.clone();
        bad[field_offset..field_offset + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        restamp(&mut bad);
        assert!(
            matches!(
                DatasetStore::from_bytes(&bad),
                Err(HicsError::InvalidModel { .. }) | Err(HicsError::Truncated { .. })
            ),
            "field at {field_offset} not rejected cleanly"
        );
    }
}

/// The store's exit-code classes match the model artifact's, so scripts
/// driving `hics import`/`fit` branch identically on both file kinds.
#[test]
fn error_classes_share_the_artifact_exit_codes() {
    assert_eq!(HicsError::BadMagic.exit_code(), 4);
    let e = HicsError::Truncated {
        section: ArtifactSection::Pages,
        offset: 100,
        needed: 8,
        available: 0,
    };
    assert_eq!(e.exit_code(), 4);
    assert!(e.to_string().contains("pages"), "{e}");
}
