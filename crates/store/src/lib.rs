//! # hics-store — the out-of-core columnar dataset store
//!
//! HiCS fits on a fully materialised in-RAM matrix; this crate removes that
//! cap. A **dataset store** is a versioned, checksummed, memory-mappable
//! column file: `hics import` streams CSV/ARFF rows into it with bounded
//! memory, and the fit pipeline reads its columns **zero-copy** out of the
//! map through the [`DatasetSource`] seam — the page cache, not the heap,
//! holds the matrix. Sharded fits (`hics fit --shards S`) gather only one
//! shard's rows at a time, so training data larger than RAM flows through
//! import → shard-fit → serve end to end.
//!
//! # On-disk format (version 1)
//!
//! Little-endian throughout, with the model artifact's 72-byte header
//! shape and FNV-1a checksum scheme (`hics_data::model::artifact_checksum`;
//! any single corrupted byte is guaranteed to change the checksum). Every
//! section starts on an 8-byte boundary from the start of the file, so a
//! memory map yields naturally aligned `f64` column slices in place:
//!
//! ```text
//! offset  size  field
//!      0     8  magic "HICSSTR\0"
//!      8     4  format version (u32, = 1)
//!     12     4  header length  (u32, = 72)
//!     16     8  n — rows       (u64; not capped at u32 — only per-shard
//!                               model artifacts carry that cap)
//!     24     8  d — attributes (u64)
//!     32     8  reserved (0)
//!     40     4  normalisation  (u32: 0 none, 1 min-max, 2 z-score)
//!     44     4  reserved (0)
//!     48     8  reserved (0)
//!     56     8  payload length (u64, bytes after the header)
//!     64     8  checksum       (u64, FNV-1a over bytes 0..64 and 72..end)
//! ----- sections, each starting on an 8-byte boundary -----
//!            names       d × (u32 len + utf-8 bytes), zero-padded to 8 B
//!            norm params d × (offset f64, divisor f64)
//!            columns     d × n × f64   (column-contiguous)
//! ```
//!
//! # Bounded-memory import
//!
//! The column-contiguous layout is what makes the zero-copy read side
//! trivial — but a row-streaming importer cannot write it directly without
//! holding all columns. [`StoreWriter`] resolves the tension with a spill
//! pass: rows accumulate in a column-major **chunk buffer** of at most
//! `chunk_rows` rows; full chunks are appended to a spill file
//! (chunk-major, column-minor); [`StoreWriter::finish`] then assembles the
//! final file by walking the spill **per column** (one sequential page read
//! per chunk) — peak memory is `O(d · chunk_rows)`, never `O(n · d)`.
//!
//! Normalisation happens in the same pass: min/max bounds or Welford
//! moments accumulate per column while rows stream in (in row order —
//! bit-identical to `apply_normalization` on the materialised data, which
//! folds each column in the same order), and the transform is applied as
//! pages are copied into the final file. The resulting params are stored in
//! the file, and a fit over the store records them in the model artifact so
//! raw query points map into the trained value space at serve time.

#![warn(missing_docs)]

use hics_data::mmap::{AlignedBytes, ByteStorage};
use hics_data::model::{
    artifact_checksum, fnv1a, peek_artifact_version, Reader, FNV_OFFSET, MAGIC as MODEL_MAGIC,
};
use hics_data::{
    ArtifactSection, ColumnsView, Dataset, DatasetSource, HicsError, NormKind, NormParam,
};
use hics_stats::Moments;
use std::borrow::Cow;
use std::io::{Read as _, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic, first eight bytes of every dataset store.
pub const STORE_MAGIC: [u8; 8] = *b"HICSSTR\0";

/// Current store format version.
pub const STORE_VERSION: u32 = 1;

/// Default rows per import chunk (≈ 4 MB of chunk buffer at d = 8).
pub const DEFAULT_CHUNK_ROWS: usize = 65_536;

const HEADER_LEN: usize = 72;

/// Per-column normalisation accumulator, fed in row order so the resulting
/// parameters are bit-identical to `apply_normalization` on the
/// materialised columns.
#[derive(Debug, Clone)]
enum NormAcc {
    None,
    MinMax { lo: f64, hi: f64 },
    ZScore(Moments),
}

impl NormAcc {
    fn new(kind: NormKind) -> Self {
        match kind {
            NormKind::None => NormAcc::None,
            NormKind::MinMax => NormAcc::MinMax {
                lo: f64::INFINITY,
                hi: f64::NEG_INFINITY,
            },
            NormKind::ZScore => NormAcc::ZScore(Moments::new()),
        }
    }

    #[inline]
    fn push(&mut self, v: f64) {
        match self {
            NormAcc::None => {}
            NormAcc::MinMax { lo, hi } => {
                *lo = lo.min(v);
                *hi = hi.max(v);
            }
            NormAcc::ZScore(m) => m.push(v),
        }
    }

    fn param(&self) -> NormParam {
        match self {
            NormAcc::None => NormParam::IDENTITY,
            NormAcc::MinMax { lo, hi } => {
                let width = hi - lo;
                NormParam {
                    offset: *lo,
                    divisor: if width > 0.0 { width } else { 0.0 },
                }
            }
            NormAcc::ZScore(m) => {
                let sd = m.population_variance().sqrt();
                NormParam {
                    offset: m.mean(),
                    divisor: if sd > 0.0 { sd } else { 0.0 },
                }
            }
        }
    }
}

/// Summary of a completed [`StoreWriter`] run.
#[derive(Debug, Clone)]
pub struct StoreSummary {
    /// Rows written.
    pub n: u64,
    /// Attributes written.
    pub d: usize,
    /// Final file size in bytes.
    pub bytes: u64,
    /// Chunks spilled during import (0 when everything fit in one buffer).
    pub spilled_chunks: usize,
}

/// Streams rows into a dataset store with bounded memory (see the module
/// docs for the spill-and-assemble scheme).
pub struct StoreWriter {
    path: PathBuf,
    spill_path: PathBuf,
    spill: Option<std::fs::File>,
    chunk_rows: usize,
    norm_kind: NormKind,
    /// Column-major buffer of the chunk under construction.
    chunk: Vec<Vec<f64>>,
    /// Row counts of the spilled chunks, in spill order.
    spilled: Vec<usize>,
    norm: Vec<NormAcc>,
    n: u64,
}

impl StoreWriter {
    /// Creates a writer targeting `path`. Nothing is written until rows
    /// arrive; the final file appears atomically at
    /// [`StoreWriter::finish`].
    ///
    /// # Panics
    /// Panics if `chunk_rows` is zero.
    pub fn create(path: &Path, chunk_rows: usize, norm_kind: NormKind) -> Self {
        assert!(chunk_rows >= 1, "chunk_rows must be at least 1");
        let mut spill_name = path.file_name().unwrap_or_default().to_os_string();
        spill_name.push(format!(".spill.{}", std::process::id()));
        Self {
            path: path.to_path_buf(),
            spill_path: path.with_file_name(spill_name),
            spill: None,
            chunk_rows,
            norm_kind,
            chunk: Vec::new(),
            spilled: Vec::new(),
            norm: Vec::new(),
            n: 0,
        }
    }

    /// Appends one row. The first row fixes the attribute count; every
    /// value must be finite.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), HicsError> {
        if self.chunk.is_empty() {
            if row.is_empty() {
                return Err(HicsError::InvalidInput(
                    "store rows need at least one attribute".into(),
                ));
            }
            self.chunk = vec![Vec::with_capacity(self.chunk_rows.min(1 << 20)); row.len()];
            self.norm = vec![NormAcc::new(self.norm_kind); row.len()];
        }
        if row.len() != self.chunk.len() {
            return Err(HicsError::InvalidInput(format!(
                "row {} has {} attributes, store has {}",
                self.n,
                row.len(),
                self.chunk.len()
            )));
        }
        if let Some(j) = row.iter().position(|v| !v.is_finite()) {
            return Err(HicsError::InvalidInput(format!(
                "row {} attribute {j} is not a finite number",
                self.n
            )));
        }
        for ((col, acc), &v) in self.chunk.iter_mut().zip(&mut self.norm).zip(row) {
            col.push(v);
            acc.push(v);
        }
        self.n += 1;
        if self.chunk[0].len() == self.chunk_rows {
            self.spill_chunk()?;
        }
        Ok(())
    }

    /// Writes the buffered chunk to the spill file (column-contiguous
    /// within the chunk) and clears the buffer.
    fn spill_chunk(&mut self) -> Result<(), HicsError> {
        let rows = self.chunk[0].len();
        if rows == 0 {
            return Ok(());
        }
        if self.spill.is_none() {
            let f = std::fs::File::create(&self.spill_path)
                .map_err(|e| HicsError::io_path("creating", &self.spill_path, e))?;
            self.spill = Some(f);
        }
        let spill = self.spill.as_mut().expect("just ensured");
        for col in &mut self.chunk {
            spill
                .write_all(&f64s_le(col))
                .map_err(|e| HicsError::io_path("spilling to", &self.spill_path, e))?;
            col.clear();
        }
        self.spilled.push(rows);
        Ok(())
    }

    /// Assembles and atomically writes the final store file, returning its
    /// summary. `names` defaults to `attr0..attrD`.
    pub fn finish(mut self, names: Option<Vec<String>>) -> Result<StoreSummary, HicsError> {
        let result = self.finish_inner(names);
        // The spill is working state either way.
        std::fs::remove_file(&self.spill_path).ok();
        result
    }

    fn finish_inner(&mut self, names: Option<Vec<String>>) -> Result<StoreSummary, HicsError> {
        if self.n == 0 {
            return Err(HicsError::InvalidInput(
                "store needs at least one row".into(),
            ));
        }
        let d = self.chunk.len();
        let names = names.unwrap_or_else(|| (0..d).map(|j| format!("attr{j}")).collect::<Vec<_>>());
        if names.len() != d {
            return Err(HicsError::InvalidInput(format!(
                "{} names for {d} attributes",
                names.len()
            )));
        }
        let params: Vec<NormParam> = self.norm.iter().map(NormAcc::param).collect();

        // Exact payload length.
        let names_bytes: usize = names.iter().map(|s| 4 + s.len()).sum();
        let payload = (HEADER_LEN + names_bytes).next_multiple_of(8) - HEADER_LEN
            + d * 16
            + d * (self.n as usize) * 8;

        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&STORE_MAGIC);
        header.extend_from_slice(&STORE_VERSION.to_le_bytes());
        header.extend_from_slice(&(HEADER_LEN as u32).to_le_bytes());
        header.extend_from_slice(&self.n.to_le_bytes());
        header.extend_from_slice(&(d as u64).to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        header.extend_from_slice(&norm_code(self.norm_kind).to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        header.extend_from_slice(&(payload as u64).to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes()); // checksum, patched below
        debug_assert_eq!(header.len(), HEADER_LEN);

        let mut tmp_name = self.path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = self.path.with_file_name(tmp_name);
        let write = (|| -> Result<u64, HicsError> {
            let file =
                std::fs::File::create(&tmp).map_err(|e| HicsError::io_path("creating", &tmp, e))?;
            let io = |e: std::io::Error| HicsError::io_path("writing", &tmp, e);
            let mut w = std::io::BufWriter::new(file);
            let mut hash = fnv1a(FNV_OFFSET, &header[..64]);
            let mut put = |w: &mut std::io::BufWriter<std::fs::File>,
                           bytes: &[u8]|
             -> Result<(), HicsError> {
                hash = fnv1a(hash, bytes);
                w.write_all(bytes).map_err(io)
            };
            w.write_all(&header).map_err(io)?;
            let mut written = 0usize;
            for name in &names {
                put(&mut w, &(name.len() as u32).to_le_bytes())?;
                put(&mut w, name.as_bytes())?;
                written += 4 + name.len();
            }
            if !written.is_multiple_of(8) {
                put(&mut w, &[0u8; 8][..8 - written % 8])?;
            }
            for p in &params {
                put(&mut w, &p.offset.to_le_bytes())?;
                put(&mut w, &p.divisor.to_le_bytes())?;
            }
            // Columns: per attribute, the spilled pages in chunk order,
            // then the in-memory tail — transformed on the fly.
            let mut page: Vec<f64> = Vec::with_capacity(self.chunk_rows);
            let mut spill = match &self.spill {
                Some(_) => Some(
                    std::fs::File::open(&self.spill_path)
                        .map_err(|e| HicsError::io_path("re-opening", &self.spill_path, e))?,
                ),
                None => None,
            };
            // Spill layout: chunk-major, column-minor. Chunk c starts at
            // (Σ rows of earlier chunks) · d · 8.
            let mut chunk_offsets = Vec::with_capacity(self.spilled.len());
            let mut off = 0u64;
            for &rows in &self.spilled {
                chunk_offsets.push(off);
                off += (rows * d * 8) as u64;
            }
            for (j, &p) in params.iter().enumerate() {
                if let Some(spill) = spill.as_mut() {
                    for (c, &rows) in self.spilled.iter().enumerate() {
                        let page_off = chunk_offsets[c] + (j * rows * 8) as u64;
                        spill
                            .seek(SeekFrom::Start(page_off))
                            .map_err(|e| HicsError::io_path("seeking in", &self.spill_path, e))?;
                        page.clear();
                        page.resize(rows, 0.0);
                        read_f64s(spill, &mut page, &self.spill_path)?;
                        transform(&mut page, self.norm_kind, p);
                        put(&mut w, &f64s_le(&page))?;
                    }
                }
                // The unspilled tail.
                if !self.chunk[j].is_empty() {
                    page.clear();
                    page.extend_from_slice(&self.chunk[j]);
                    transform(&mut page, self.norm_kind, p);
                    put(&mut w, &f64s_le(&page))?;
                }
            }
            let checksum = hash;
            let mut file = w
                .into_inner()
                .map_err(|e| HicsError::io_path("flushing", &tmp, e.into()))?;
            file.seek(SeekFrom::Start(64))
                .map_err(|e| HicsError::io_path("seeking in", &tmp, e))?;
            file.write_all(&checksum.to_le_bytes())
                .map_err(|e| HicsError::io_path("patching checksum in", &tmp, e))?;
            file.sync_all()
                .map_err(|e| HicsError::io_path("syncing", &tmp, e))?;
            let bytes = file
                .metadata()
                .map_err(|e| HicsError::io_path("inspecting", &tmp, e))?
                .len();
            std::fs::rename(&tmp, &self.path)
                .map_err(|e| HicsError::io_path("renaming into", &self.path, e))?;
            Ok(bytes)
        })();
        if write.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        write.map(|bytes| StoreSummary {
            n: self.n,
            d,
            bytes,
            spilled_chunks: self.spilled.len(),
        })
    }
}

/// Applies the store's normalisation to one page in place.
fn transform(page: &mut [f64], kind: NormKind, p: NormParam) {
    if kind == NormKind::None {
        return;
    }
    for v in page.iter_mut() {
        *v = p.apply(*v);
    }
}

/// One column's values as little-endian bytes (in-place cast on
/// little-endian targets).
fn f64s_le(col: &[f64]) -> Cow<'_, [u8]> {
    if cfg!(target_endian = "little") {
        // SAFETY: f64s are plain bytes; the slice covers exactly
        // `size_of_val(col)` initialised bytes; u8 needs no alignment.
        Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(col.as_ptr() as *const u8, std::mem::size_of_val(col))
        })
    } else {
        Cow::Owned(col.iter().flat_map(|v| v.to_le_bytes()).collect())
    }
}

/// Fills `page` from the reader (little-endian f64s).
fn read_f64s(r: &mut std::fs::File, page: &mut [f64], path: &Path) -> Result<(), HicsError> {
    let mut buf = vec![0u8; page.len() * 8];
    r.read_exact(&mut buf)
        .map_err(|e| HicsError::io_path("reading spill page from", path, e))?;
    for (v, chunk) in page.iter_mut().zip(buf.chunks_exact(8)) {
        *v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
    }
    Ok(())
}

fn norm_code(kind: NormKind) -> u32 {
    match kind {
        NormKind::None => 0,
        NormKind::MinMax => 1,
        NormKind::ZScore => 2,
    }
}

fn norm_from_code(c: u32) -> Result<NormKind, String> {
    match c {
        0 => Ok(NormKind::None),
        1 => Ok(NormKind::MinMax),
        2 => Ok(NormKind::ZScore),
        other => Err(format!("unknown normalisation kind {other}")),
    }
}

/// Writes an in-memory dataset as a store file (tests, benches and the
/// occasional small-data conversion; large data should stream through
/// [`StoreWriter`] instead).
pub fn write_dataset_store(
    path: &Path,
    data: &Dataset,
    chunk_rows: usize,
    norm_kind: NormKind,
) -> Result<StoreSummary, HicsError> {
    let mut w = StoreWriter::create(path, chunk_rows, norm_kind);
    let mut row = vec![0.0; data.d()];
    for i in 0..data.n() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = data.value(i, j);
        }
        w.push_row(&row)?;
    }
    w.finish(Some(data.names().to_vec()))
}

/// The validated decoding of one store byte stream: small sections
/// materialised, the column payload located by offset.
#[derive(Debug, Clone)]
struct StoreLayout {
    n: usize,
    d: usize,
    norm_kind: NormKind,
    names: Vec<String>,
    norm: Vec<NormParam>,
    columns_offset: usize,
}

impl StoreLayout {
    fn parse(bytes: &[u8]) -> Result<Self, HicsError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(8)?;
        if magic != STORE_MAGIC {
            return Err(HicsError::BadMagic);
        }
        let version = r.u32()?;
        if version == 0 || version > STORE_VERSION {
            return Err(HicsError::UnsupportedVersion(version));
        }
        let header_len = r.u32()? as usize;
        if header_len != HEADER_LEN {
            return Err(r.invalid(format!("header length {header_len}, expected {HEADER_LEN}")));
        }
        let n = r.usize_field("row count")?;
        let d = r.usize_field("attribute count")?;
        let reserved_mid = r.u64()?;
        let norm_kind = norm_from_code(r.u32()?).map_err(|m| r.invalid(m))?;
        let reserved32 = r.u32()?;
        let reserved64 = r.u64()?;
        if reserved_mid != 0 || reserved32 != 0 || reserved64 != 0 {
            return Err(r.invalid("non-zero reserved header field".into()));
        }
        let payload_len = r.u64()? as usize;
        let stored_checksum = r.u64()?;
        debug_assert_eq!(r.offset, HEADER_LEN);
        if n == 0 || d == 0 {
            return Err(r.invalid(format!(
                "store needs at least 1 row and 1 attribute, got {n} x {d}"
            )));
        }
        if bytes.len() != HEADER_LEN + payload_len {
            return Err(HicsError::Truncated {
                section: ArtifactSection::Header,
                offset: HEADER_LEN,
                needed: payload_len,
                available: bytes.len().saturating_sub(HEADER_LEN),
            });
        }
        let computed = artifact_checksum(bytes);
        if computed != stored_checksum {
            return Err(HicsError::ChecksumMismatch {
                stored: stored_checksum,
                computed,
            });
        }
        // Cross-check the (attacker-suppliable) counts against what the
        // payload can hold before sizing any allocation from them: every
        // attribute needs ≥ 4 (name length) + 16 (norm params) + 8·n
        // column bytes.
        if d > bytes.len() / 20 {
            return Err(r.invalid(format!(
                "attribute count {d} exceeds what a {}-byte payload can hold",
                bytes.len()
            )));
        }
        if n > bytes.len() / 8 {
            return Err(r.invalid(format!(
                "row count {n} exceeds what a {}-byte payload can hold",
                bytes.len()
            )));
        }
        r.section = ArtifactSection::Names;
        let mut names = Vec::with_capacity(d);
        for j in 0..d {
            let len = r.u32()? as usize;
            let raw = r.take(len)?;
            let name = std::str::from_utf8(raw)
                .map_err(|_| r.invalid(format!("attribute {j} name is not UTF-8")))?;
            names.push(name.to_string());
        }
        r.align8()?;
        r.section = ArtifactSection::NormParams;
        let mut norm = Vec::with_capacity(d);
        for j in 0..d {
            let offset = r.f64()?;
            let divisor = r.f64()?;
            if !offset.is_finite() || !divisor.is_finite() {
                return Err(r.invalid(format!(
                    "non-finite normalisation parameters for attribute {j}"
                )));
            }
            norm.push(NormParam { offset, divisor });
        }
        // Column pages: validated in place, never materialised.
        r.section = ArtifactSection::Pages;
        let columns_offset = r.offset;
        for j in 0..d {
            for _ in 0..n {
                if !r.f64()?.is_finite() {
                    return Err(r.invalid(format!("non-finite value in column {j}")));
                }
            }
        }
        if r.offset != bytes.len() {
            return Err(r.invalid(format!(
                "{} trailing bytes after the column pages",
                bytes.len() - r.offset
            )));
        }
        Ok(Self {
            n,
            d,
            norm_kind,
            names,
            norm,
            columns_offset,
        })
    }
}

/// A validated dataset store over in-place bytes (memory-mapped file or
/// 8-aligned heap buffer), serving borrowed column slices — the
/// [`DatasetSource`] the out-of-core fit pipeline reads from.
#[derive(Debug)]
pub struct DatasetStore {
    storage: ByteStorage,
    layout: StoreLayout,
}

impl DatasetStore {
    /// Memory-maps and validates the store at `path`. Columns are *not*
    /// copied: [`DatasetStore::column`] borrows straight from the map. On
    /// platforms without `mmap` this transparently falls back to an aligned
    /// heap read with the same semantics.
    pub fn open_mmap(path: &Path) -> Result<Self, HicsError> {
        let file = std::fs::File::open(path).map_err(|e| HicsError::io_path("opening", path, e))?;
        let len = file
            .metadata()
            .map_err(|e| HicsError::io_path("inspecting", path, e))?
            .len();
        let len = usize::try_from(len).map_err(|_| {
            HicsError::InvalidInput(format!("{} exceeds the address space", path.display()))
        })?;
        if len == 0 {
            return Err(StoreLayout::parse(&[]).expect_err("empty store"));
        }
        let storage = ByteStorage::map_file(&file, len)
            .map_err(|e| HicsError::io_path("memory-mapping", path, e))?;
        let layout = StoreLayout::parse(storage.as_slice())?;
        Ok(Self { storage, layout })
    }

    /// Validates a store from in-memory bytes, copied into an 8-aligned
    /// buffer so column views still borrow.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, HicsError> {
        let aligned = AlignedBytes::copy_from(bytes);
        let layout = StoreLayout::parse(aligned.as_slice())?;
        Ok(Self {
            storage: ByteStorage::Heap(aligned),
            layout,
        })
    }

    /// Whether the bytes are a live memory map of the store file.
    pub fn is_mmap(&self) -> bool {
        self.storage.is_mmap()
    }

    /// Number of rows `N`.
    pub fn n(&self) -> usize {
        self.layout.n
    }

    /// Number of attributes `D`.
    pub fn d(&self) -> usize {
        self.layout.d
    }

    /// Attribute names.
    pub fn names(&self) -> &[String] {
        &self.layout.names
    }

    /// The normalisation applied to the stored values at import time.
    pub fn norm_kind(&self) -> NormKind {
        self.layout.norm_kind
    }

    /// Per-attribute normalisation parameters.
    pub fn norm_params(&self) -> &[NormParam] {
        &self.layout.norm
    }

    /// Column `j`, borrowed from the store bytes whenever the in-place cast
    /// is sound (8-aligned little-endian — every map and every
    /// [`DatasetStore::from_bytes`] buffer qualifies), copied otherwise.
    ///
    /// # Panics
    /// Panics if `j >= d`.
    pub fn column(&self, j: usize) -> Cow<'_, [f64]> {
        assert!(j < self.d(), "column {j} out of range");
        let n = self.layout.n;
        let start = self.layout.columns_offset + j * n * 8;
        let bytes = &self.storage.as_slice()[start..start + n * 8];
        if cfg!(target_endian = "little")
            && (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>())
        {
            // SAFETY: the range is in bounds (parse validated the section),
            // the pointer is 8-aligned (just checked), every f64 bit
            // pattern is a valid value (and parse checked them finite), and
            // the storage is immutable for `self`'s lifetime.
            Cow::Borrowed(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, n) })
        } else {
            Cow::Owned(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            )
        }
    }

    /// Value of row `i` in attribute `j`, read in place.
    ///
    /// # Panics
    /// Panics if `i >= n` or `j >= d`.
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n() && j < self.d(), "({i}, {j}) out of range");
        let off = self.layout.columns_offset + (j * self.layout.n + i) * 8;
        f64::from_le_bytes(
            self.storage.as_slice()[off..off + 8]
                .try_into()
                .expect("8 bytes"),
        )
    }

    /// A zero-copy view over all columns (the form the fit pipeline
    /// consumes).
    pub fn view(&self) -> ColumnsView<'_> {
        ColumnsView::from_source(self)
    }

    /// Copies the store into an owned [`Dataset`] (tests and small data
    /// only — the point of the store is to avoid exactly this).
    pub fn materialize(&self) -> Dataset {
        self.view().materialize()
    }
}

impl DatasetSource for DatasetStore {
    fn n(&self) -> usize {
        DatasetStore::n(self)
    }

    fn d(&self) -> usize {
        DatasetStore::d(self)
    }

    fn names(&self) -> &[String] {
        DatasetStore::names(self)
    }

    fn column(&self, j: usize) -> Cow<'_, [f64]> {
        DatasetStore::column(self, j)
    }

    fn norm_kind(&self) -> NormKind {
        DatasetStore::norm_kind(self)
    }

    fn norm_params(&self) -> Cow<'_, [NormParam]> {
        Cow::Borrowed(DatasetStore::norm_params(self))
    }
}

/// What kind of HiCS file sits at `path` — the sniff `hics fit` uses to
/// route an `--input` to the right loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A dataset store (`STORE_MAGIC`).
    Store,
    /// A model artifact or sharded manifest (`hics_data::model::MAGIC`),
    /// with its format version.
    Model(u32),
    /// Neither — presumably a text dataset (CSV/ARFF).
    Other,
}

/// Sniffs the first bytes of `path` (see [`FileKind`]). I/O failures other
/// than "too short" are reported; a short or unrecognised file is `Other`.
pub fn sniff_file(path: &Path) -> Result<FileKind, HicsError> {
    let mut f = std::fs::File::open(path).map_err(|e| HicsError::io_path("opening", path, e))?;
    let mut head = [0u8; 8];
    let mut got = 0usize;
    while got < head.len() {
        match f.read(&mut head[got..]) {
            Ok(0) => return Ok(FileKind::Other),
            Ok(k) => got += k,
            Err(e) => return Err(HicsError::io_path("reading", path, e)),
        }
    }
    if head == STORE_MAGIC {
        return Ok(FileKind::Store);
    }
    if head == MODEL_MAGIC {
        return Ok(FileKind::Model(peek_artifact_version(path)?));
    }
    Ok(FileKind::Other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hics_data::model::apply_normalization;
    use hics_data::SyntheticConfig;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hics-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_without_spill() {
        let g = SyntheticConfig::new(60, 4).with_seed(5).generate();
        let path = temp_path("nospill.hicsstore");
        let summary = write_dataset_store(&path, &g.dataset, 1024, NormKind::None).expect("write");
        assert_eq!(summary.n, 60);
        assert_eq!(summary.spilled_chunks, 0);
        let store = DatasetStore::open_mmap(&path).expect("open");
        assert!(cfg!(not(unix)) || store.is_mmap());
        assert_eq!(store.n(), 60);
        assert_eq!(store.d(), 4);
        assert_eq!(store.names(), g.dataset.names());
        assert_eq!(store.norm_kind(), NormKind::None);
        for j in 0..4 {
            let col = store.column(j);
            assert!(matches!(col, Cow::Borrowed(_)), "column {j} copied");
            assert_eq!(col.as_ref(), g.dataset.col(j), "column {j}");
        }
        assert_eq!(store.materialize(), g.dataset);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spilled_chunks_reassemble_bit_identically() {
        let g = SyntheticConfig::new(250, 5).with_seed(6).generate();
        let path = temp_path("spill.hicsstore");
        // 17-row chunks force 14 spills plus a tail.
        let summary = write_dataset_store(&path, &g.dataset, 17, NormKind::None).expect("write");
        assert_eq!(summary.spilled_chunks, 250 / 17);
        let store = DatasetStore::open_mmap(&path).expect("open");
        for j in 0..5 {
            assert_eq!(store.column(j).as_ref(), g.dataset.col(j), "column {j}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_normalisation_matches_materialised() {
        let g = SyntheticConfig::new(180, 4).with_seed(7).generate();
        for kind in [NormKind::MinMax, NormKind::ZScore] {
            let path = temp_path(&format!("norm-{}.hicsstore", kind.name()));
            write_dataset_store(&path, &g.dataset, 33, kind).expect("write");
            let store = DatasetStore::open_mmap(&path).expect("open");
            let (reference, params) = apply_normalization(&g.dataset, kind);
            assert_eq!(store.norm_kind(), kind);
            assert_eq!(store.norm_params(), &params[..], "{}", kind.name());
            for j in 0..4 {
                assert_eq!(
                    store.column(j).as_ref(),
                    reference.col(j),
                    "{} column {j} not bit-identical",
                    kind.name()
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn writer_rejects_bad_rows() {
        let path = temp_path("reject.hicsstore");
        let mut w = StoreWriter::create(&path, 8, NormKind::None);
        w.push_row(&[1.0, 2.0]).unwrap();
        assert!(w.push_row(&[1.0]).is_err(), "ragged row accepted");
        assert!(w.push_row(&[1.0, f64::NAN]).is_err(), "NaN accepted");
        let empty = StoreWriter::create(&path, 8, NormKind::None);
        assert!(empty.finish(None).is_err(), "empty store accepted");
        assert!(!path.exists());
    }

    #[test]
    fn sniff_recognises_all_file_kinds() {
        let g = SyntheticConfig::new(60, 3).with_seed(8).generate();
        let store_path = temp_path("sniff.hicsstore");
        write_dataset_store(&store_path, &g.dataset, 64, NormKind::None).unwrap();
        assert_eq!(sniff_file(&store_path).unwrap(), FileKind::Store);
        let csv_path = temp_path("sniff.csv");
        std::fs::write(&csv_path, "a,b\n1,2\n").unwrap();
        assert_eq!(sniff_file(&csv_path).unwrap(), FileKind::Other);
        std::fs::write(&csv_path, "x").unwrap();
        assert_eq!(sniff_file(&csv_path).unwrap(), FileKind::Other);
        std::fs::remove_file(&store_path).ok();
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn view_is_fully_borrowed_and_source_reports_norm() {
        let g = SyntheticConfig::new(70, 3).with_seed(9).generate();
        let path = temp_path("view.hicsstore");
        write_dataset_store(&path, &g.dataset, 64, NormKind::MinMax).unwrap();
        let store = DatasetStore::open_mmap(&path).unwrap();
        let view = store.view();
        assert!(view.is_fully_borrowed(), "store view must be zero-copy");
        assert_eq!(view.n(), 70);
        let src: &dyn DatasetSource = &store;
        assert_eq!(src.norm_kind(), NormKind::MinMax);
        assert_eq!(src.norm_params().len(), 3);
        std::fs::remove_file(&path).ok();
    }
}
