//! Non-blocking epoll reactor: the serving core's event loop.
//!
//! One reactor per serving thread, each with its own `SO_REUSEPORT`
//! listener, epoll instance and connection slab — the kernel load-balances
//! accepts across reactors, so there is no shared accept lock and no
//! cross-thread connection handoff. Connections are driven level-triggered:
//! readable/writable events advance the per-connection state machine in
//! [`crate::conn`], `/score` work is handed to the shared batcher, and its
//! completions come back through an eventfd-backed [`Notifier`] so the
//! reactor never blocks on anything but `epoll_wait`.
//!
//! Everything here talks to the kernel through inline `extern "C"`
//! declarations (the same idiom as the artifact mmap layer) — no runtime
//! crates, no epoll wrapper dependency.

use crate::conn::{Conn, Drive};
use crate::metrics::ReactorMetrics;
use crate::server::{Ctx, WakeSet};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Readable-interest flag (subset of the kernel's epoll event bits).
pub(crate) const EPOLLIN: u32 = 0x1;
/// Writable-interest flag.
pub(crate) const EPOLLOUT: u32 = 0x4;
/// Error condition (always reported, never registered).
const EPOLLERR: u32 = 0x8;
/// Peer hangup (always reported, never registered).
const EPOLLHUP: u32 = 0x10;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_MOD: i32 = 3;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const AF_INET: i32 = 2;
const AF_INET6: i32 = 10;
const SOCK_STREAM: i32 = 1;
const SOCK_CLOEXEC: i32 = 0o2000000;
const SOL_SOCKET: i32 = 1;
const SO_REUSEADDR: i32 = 2;
const SO_REUSEPORT: i32 = 15;

/// Slab token for the reactor's own listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Slab token for the completion-notifier eventfd.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Max events drained per `epoll_wait` call.
const MAX_EVENTS: usize = 256;

/// Kernel `struct epoll_event`. Packed on x86-64 (the kernel ABI there has
/// no padding between the 32-bit mask and the 64-bit payload); naturally
/// aligned everywhere else. Fields are only ever read by value.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
    fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
}

// ---------------------------------------------------------------------------
// Listener setup
// ---------------------------------------------------------------------------

/// Owns a raw fd until explicitly released (closes on early-return paths).
struct OwnedFd(RawFd);

impl OwnedFd {
    fn release(self) -> RawFd {
        let fd = self.0;
        std::mem::forget(self);
        fd
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // SAFETY: fd was returned by socket()/eventfd() and is owned here.
        unsafe { close(self.0) };
    }
}

/// Serializes `addr` into the kernel's sockaddr layout.
fn sockaddr_bytes(addr: &SocketAddr) -> (Vec<u8>, i32) {
    match addr {
        SocketAddr::V4(v4) => {
            let mut buf = Vec::with_capacity(16);
            buf.extend_from_slice(&(AF_INET as u16).to_ne_bytes());
            buf.extend_from_slice(&v4.port().to_be_bytes());
            buf.extend_from_slice(&v4.ip().octets());
            buf.extend_from_slice(&[0u8; 8]);
            (buf, AF_INET)
        }
        SocketAddr::V6(v6) => {
            let mut buf = Vec::with_capacity(28);
            buf.extend_from_slice(&(AF_INET6 as u16).to_ne_bytes());
            buf.extend_from_slice(&v6.port().to_be_bytes());
            buf.extend_from_slice(&v6.flowinfo().to_be_bytes());
            buf.extend_from_slice(&v6.ip().octets());
            buf.extend_from_slice(&v6.scope_id().to_ne_bytes());
            (buf, AF_INET6)
        }
    }
}

/// Binds a TCP listener with `SO_REUSEPORT` set, so N reactors can each
/// own a listener on the same address and let the kernel spread accepts.
pub(crate) fn bind_reuseport(addr: &SocketAddr) -> std::io::Result<TcpListener> {
    let (sa, family) = sockaddr_bytes(addr);
    // SAFETY: plain socket creation; flags are valid constants.
    let fd = unsafe { socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(std::io::Error::last_os_error());
    }
    let fd = OwnedFd(fd);
    let one: i32 = 1;
    for opt in [SO_REUSEADDR, SO_REUSEPORT] {
        // SAFETY: optval points at a live i32 of the advertised length.
        let rc = unsafe { setsockopt(fd.0, SOL_SOCKET, opt, &one, 4) };
        if rc != 0 {
            return Err(std::io::Error::last_os_error());
        }
    }
    // SAFETY: sa holds a properly laid out sockaddr of the stated length.
    let rc = unsafe { bind(fd.0, sa.as_ptr(), sa.len() as u32) };
    if rc != 0 {
        return Err(std::io::Error::last_os_error());
    }
    // SAFETY: fd is a bound, unconnected stream socket.
    let rc = unsafe { listen(fd.0, 1024) };
    if rc != 0 {
        return Err(std::io::Error::last_os_error());
    }
    // SAFETY: fd is a live listening socket whose ownership transfers here.
    Ok(unsafe { TcpListener::from_raw_fd(fd.release()) })
}

/// Resolves an address spec (as accepted by `ServeConfig::addr`) and binds
/// the first candidate with `SO_REUSEPORT`.
pub(crate) fn bind_listener(spec: &str) -> std::io::Result<TcpListener> {
    let addr = spec.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{spec:?} resolved to no addresses"),
        )
    })?;
    bind_reuseport(&addr)
}

// ---------------------------------------------------------------------------
// Completion notifier
// ---------------------------------------------------------------------------

/// One finished batch/reload reply addressed to a parked connection.
pub(crate) struct Completion {
    /// Slab index of the target connection.
    pub(crate) token: usize,
    /// Slot epoch at submit time; a mismatch means the connection died and
    /// the slot was recycled, so the completion is dropped.
    pub(crate) epoch: u64,
    /// HTTP status of the rendered reply.
    pub(crate) status: u16,
    /// Rendered reply body.
    pub(crate) body: String,
}

/// Mailbox + eventfd pair that lets batcher workers and reload threads
/// hand completed replies back to a reactor and kick it out of
/// `epoll_wait`.
pub(crate) struct Notifier {
    fd: RawFd,
    completions: Mutex<Vec<Completion>>,
}

impl Notifier {
    fn new() -> std::io::Result<Self> {
        // SAFETY: plain eventfd creation with valid flags.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self {
            fd,
            completions: Mutex::new(Vec::new()),
        })
    }

    /// Queues a completed reply and wakes the owning reactor.
    pub(crate) fn complete(&self, token: usize, epoch: u64, status: u16, body: String) {
        self.completions.lock().unwrap().push(Completion {
            token,
            epoch,
            status,
            body,
        });
        self.wake();
    }

    /// Kicks the reactor out of `epoll_wait` (EAGAIN on a saturated
    /// counter is fine — the reactor is already due to wake).
    pub(crate) fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        // SAFETY: writes 8 bytes from a live buffer to an owned eventfd.
        unsafe { write(self.fd, one.as_ptr(), 8) };
    }

    /// Takes all pending completions.
    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().unwrap())
    }

    /// Resets the eventfd counter.
    fn clear(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads up to 8 bytes into a live buffer from an owned fd.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Notifier {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this notifier and closed exactly once.
        unsafe { close(self.fd) };
    }
}

// ---------------------------------------------------------------------------
// Reactor loop
// ---------------------------------------------------------------------------

/// One connection slot. The epoch increments every time the slot is
/// recycled, so completions addressed to a dead connection are dropped
/// instead of being written to its successor.
struct Slot {
    epoch: u64,
    conn: Option<Conn>,
}

fn epoll_ctl_checked(epfd: RawFd, op: i32, fd: RawFd, events: u32, data: u64) {
    let mut ev = EpollEvent { events, data };
    // SAFETY: epfd is a live epoll instance, fd a live descriptor, and ev
    // outlives the call.
    unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
}

/// Frees a slot: dropping the connection closes its socket, which also
/// removes it from the epoll interest list.
fn close_slot(slots: &mut [Slot], free: &mut Vec<usize>, ctx: &Ctx, idx: usize) {
    let slot = &mut slots[idx];
    if slot.conn.take().is_some() {
        slot.epoch += 1;
        free.push(idx);
        ctx.conns.active.add(-1);
    }
}

/// Advances one connection and reconciles its epoll interest (or frees the
/// slot if it finished/died).
#[allow(clippy::too_many_arguments)]
fn drive_slot(
    epfd: RawFd,
    slots: &mut [Slot],
    free: &mut Vec<usize>,
    ctx: &Ctx,
    notifier: &Arc<Notifier>,
    idx: usize,
    readable: bool,
) {
    let slot = &mut slots[idx];
    let epoch = slot.epoch;
    let Some(conn) = slot.conn.as_mut() else {
        return;
    };
    match conn.drive(ctx, notifier, idx, epoch, readable) {
        Drive::Close => close_slot(slots, free, ctx, idx),
        Drive::Continue => {
            let want = conn.wanted_interest(ctx.config.high_water);
            if want != conn.registered {
                epoll_ctl_checked(
                    epfd,
                    EPOLL_CTL_MOD,
                    conn.stream().as_raw_fd(),
                    want,
                    idx as u64,
                );
                conn.registered = want;
            }
        }
    }
}

/// Refuses a connection over the limit: best-effort 503, then drop.
fn shed_connection(stream: TcpStream, ctx: &Ctx) {
    ctx.conns.shed.inc();
    let _ = stream.set_nonblocking(true);
    let mut reply = Vec::new();
    let _ = crate::http::write_response(
        &mut reply,
        503,
        &crate::http::error_body("server is at its connection limit"),
        true,
    );
    let _ = (&stream).write(&reply);
}

/// Accepts until the listener would block, registering each connection.
fn accept_all(
    epfd: RawFd,
    listener: &TcpListener,
    slots: &mut Vec<Slot>,
    free: &mut Vec<usize>,
    ctx: &Ctx,
    rm: &Arc<ReactorMetrics>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let active = ctx.conns.active.get().max(0) as usize;
                if active >= ctx.config.max_connections {
                    shed_connection(stream, ctx);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                ctx.conns.accepted.inc();
                ctx.conns.active.add(1);
                let idx = match free.pop() {
                    Some(idx) => idx,
                    None => {
                        slots.push(Slot {
                            epoch: 0,
                            conn: None,
                        });
                        slots.len() - 1
                    }
                };
                let conn = Conn::new(stream, ctx, Arc::clone(rm));
                epoll_ctl_checked(
                    epfd,
                    EPOLL_CTL_ADD,
                    conn.stream().as_raw_fd(),
                    EPOLLIN,
                    idx as u64,
                );
                slots[idx].conn = Some(conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept failure (EMFILE and friends): back off
                // briefly rather than spinning hot.
                std::thread::sleep(Duration::from_millis(10));
                break;
            }
        }
    }
}

/// The epoll timeout until the nearest connection deadline, capped at 1 s
/// so the stop flag is always observed promptly.
fn next_timeout_ms(slots: &[Slot]) -> i32 {
    let now = Instant::now();
    let mut best: Option<Duration> = None;
    for slot in slots {
        if let Some(conn) = &slot.conn {
            if let Some(dl) = conn.deadline {
                let until = dl.saturating_duration_since(now);
                best = Some(best.map_or(until, |b: Duration| b.min(until)));
            }
        }
    }
    match best {
        Some(d) => (d.as_millis().min(1000) as i32).max(0),
        None => 1000,
    }
}

/// Runs one reactor to completion: accepts, drives connections, delivers
/// batcher completions and enforces idle deadlines, until `stop` is set.
pub(crate) fn run_reactor(
    listener: TcpListener,
    ctx: Ctx,
    stop: Arc<AtomicBool>,
    wakes: &WakeSet,
    reactor_id: usize,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let rm = ctx.metrics.reactor(reactor_id);
    // SAFETY: plain epoll instance creation with a valid flag.
    let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if epfd < 0 {
        return;
    }
    let epfd_guard = OwnedFd(epfd);
    let Ok(notifier) = Notifier::new() else {
        return;
    };
    let notifier = Arc::new(notifier);
    {
        let waker = Arc::clone(&notifier);
        wakes.lock().unwrap().push(Box::new(move || waker.wake()));
    }
    epoll_ctl_checked(
        epfd,
        EPOLL_CTL_ADD,
        listener.as_raw_fd(),
        EPOLLIN,
        TOKEN_LISTENER,
    );
    epoll_ctl_checked(epfd, EPOLL_CTL_ADD, notifier.fd, EPOLLIN, TOKEN_WAKER);

    let mut slots: Vec<Slot> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];

    while !stop.load(Ordering::SeqCst) {
        let timeout = next_timeout_ms(&slots);
        // SAFETY: events is a live array of MAX_EVENTS entries; epfd is a
        // live epoll instance.
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), MAX_EVENTS as i32, timeout) };
        if n < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                continue;
            }
            break;
        }
        rm.wakeups.inc();
        for ev in &events[..n as usize] {
            // Copy out of the (possibly packed) struct before use.
            let token = ev.data;
            let mask = ev.events;
            match token {
                TOKEN_LISTENER => accept_all(epfd, &listener, &mut slots, &mut free, &ctx, &rm),
                TOKEN_WAKER => notifier.clear(),
                _ => {
                    let idx = token as usize;
                    if idx >= slots.len() {
                        continue;
                    }
                    let readable = mask & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0;
                    drive_slot(epfd, &mut slots, &mut free, &ctx, &notifier, idx, readable);
                }
            }
        }
        // Deliver any replies the batcher / reload threads finished.
        for c in notifier.drain() {
            rm.completions.inc();
            let idx = c.token;
            if idx >= slots.len() || slots[idx].epoch != c.epoch {
                continue;
            }
            let Some(conn) = slots[idx].conn.as_mut() else {
                continue;
            };
            conn.on_completion(&ctx, c.status, c.body);
            drive_slot(epfd, &mut slots, &mut free, &ctx, &notifier, idx, false);
        }
        // Enforce idle deadlines.
        let now = Instant::now();
        for idx in 0..slots.len() {
            let Some(conn) = slots[idx].conn.as_mut() else {
                continue;
            };
            if conn.deadline.is_some_and(|dl| dl <= now) {
                conn.on_timeout(&ctx);
                drive_slot(epfd, &mut slots, &mut free, &ctx, &notifier, idx, false);
            }
        }
    }
    drop(epfd_guard);
}
