//! Client-side HTTP/1.1: persistent keep-alive connections and per-address
//! connection pools, speaking the same wire protocol [`crate::server`]
//! serves. This is the transport under the `hics route` scatter-gather
//! tier — the router talks to `hics serve` backends through [`Pool`]s, one
//! per replica, so a steady query stream reuses warm connections instead
//! of paying a dial per fan-out.
//!
//! Responses are `Content-Length`-framed only (every non-streaming server
//! endpoint frames that way); a chunked response is a protocol error here.
//! Scoring rows are rendered with [`json::write_f64`] — the shortest
//! round-trip form — so an `f64` crosses the wire bit-for-bit and a
//! routed ensemble fold matches the in-process one exactly.

use crate::json;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// Hard cap on a response head (status line + headers).
const MAX_RESPONSE_HEAD: usize = 16 * 1024;

/// Read granularity while accumulating a response.
const READ_CHUNK: usize = 4096;

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// The `Content-Length`-framed body.
    pub body: Vec<u8>,
    /// Whether the server left the connection open for reuse.
    pub keep_alive: bool,
}

impl Response {
    /// The body as UTF-8, for JSON endpoints.
    pub fn text(&self) -> std::io::Result<&str> {
        std::str::from_utf8(&self.body).map_err(|_| other("response body is not UTF-8"))
    }
}

fn other(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

/// Parses a response head (everything through the blank line): status
/// code, content length, keep-alive verdict.
fn parse_response_head(head: &[u8]) -> std::io::Result<(u16, usize, bool)> {
    let text = std::str::from_utf8(head).map_err(|_| other("response head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(other(format!("bad status line {status_line:?}")));
    }
    let status: u16 = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| other(format!("bad status line {status_line:?}")))?;
    let mut len = 0usize;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            len = value
                .parse()
                .map_err(|_| other(format!("bad Content-Length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(other("chunked responses are not supported here"));
        }
    }
    Ok((status, len, keep_alive))
}

/// One persistent client connection.
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
}

impl ClientConn {
    /// Dials `addr` (e.g. `127.0.0.1:7878`) within `timeout`.
    pub fn connect(addr: &str, timeout: Duration) -> std::io::Result<Self> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| other(format!("{addr} resolves to no address")))?;
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request and reads its response. `timeout` bounds each
    /// socket read and write (not the whole exchange — callers enforce
    /// end-to-end deadlines by retrying/hedging above this layer).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
    ) -> std::io::Result<Response> {
        self.request_traced(method, path, body, timeout, None)
    }

    /// [`ClientConn::request`] with an optional `x-hics-trace` header —
    /// how a routed request's trace context crosses to the backend. With
    /// `trace: None` the request bytes are identical to the plain form.
    pub fn request_traced(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
        trace: Option<&str>,
    ) -> std::io::Result<Response> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))?;
        let body = body.unwrap_or("");
        let mut req = String::with_capacity(96 + body.len());
        req.push_str(method);
        req.push(' ');
        req.push_str(path);
        req.push_str(" HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: ");
        req.push_str(&body.len().to_string());
        req.push_str("\r\n");
        if let Some(value) = trace {
            req.push_str("x-hics-trace: ");
            req.push_str(value);
            req.push_str("\r\n");
        }
        req.push_str("\r\n");
        req.push_str(body);
        self.stream.write_all(req.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let mut buf: Vec<u8> = Vec::with_capacity(1024);
        let head_end = loop {
            if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            if buf.len() > MAX_RESPONSE_HEAD {
                return Err(other("response head too large"));
            }
            let mut tmp = [0u8; READ_CHUNK];
            let n = self.stream.read(&mut tmp)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            buf.extend_from_slice(&tmp[..n]);
        };
        let (status, len, keep_alive) = parse_response_head(&buf[..head_end])?;
        // Whatever the head read over-pulled is the body prefix.
        let mut body = buf.split_off(head_end);
        if body.len() < len {
            let start = body.len();
            body.resize(len, 0);
            self.stream.read_exact(&mut body[start..])?;
        } else {
            body.truncate(len);
        }
        Ok(Response {
            status,
            body,
            keep_alive,
        })
    }
}

/// A keep-alive connection pool for one address. Idle connections are
/// capped; a request prefers a pooled connection and transparently
/// re-dials when the pooled one has gone stale (the server timed it out
/// or died between uses) — one fresh attempt, so a dead backend still
/// fails fast.
#[derive(Debug)]
pub struct Pool {
    addr: String,
    idle: Mutex<Vec<ClientConn>>,
    cap: usize,
}

impl Pool {
    /// A pool for `addr` keeping at most `cap` idle connections.
    pub fn new(addr: impl Into<String>, cap: usize) -> Self {
        Self {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
            cap,
        }
    }

    /// The pooled address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Idle connections currently parked (the `/route` pool depth).
    pub fn depth(&self) -> usize {
        self.idle.lock().expect("pool").len()
    }

    fn take_idle(&self) -> Option<ClientConn> {
        self.idle.lock().expect("pool").pop()
    }

    fn put(&self, conn: ClientConn) {
        let mut idle = self.idle.lock().expect("pool");
        if idle.len() < self.cap {
            idle.push(conn);
        }
    }

    /// Drops every idle connection (e.g. after the backend was evicted).
    pub fn drain(&self) {
        self.idle.lock().expect("pool").clear();
    }

    /// One request/response exchange against the pooled address. A stale
    /// pooled connection costs one silent retry on a fresh dial; errors
    /// returned here are from a fresh connection and therefore real.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
    ) -> std::io::Result<Response> {
        self.request_traced(method, path, body, timeout, None)
    }

    /// [`Pool::request`] carrying an optional `x-hics-trace` header.
    pub fn request_traced(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
        trace: Option<&str>,
    ) -> std::io::Result<Response> {
        if let Some(mut conn) = self.take_idle() {
            if let Ok(resp) = conn.request_traced(method, path, body, timeout, trace) {
                if resp.keep_alive {
                    self.put(conn);
                }
                return Ok(resp);
            }
        }
        let mut conn = ClientConn::connect(&self.addr, timeout)?;
        let resp = conn.request_traced(method, path, body, timeout, trace)?;
        if resp.keep_alive {
            self.put(conn);
        }
        Ok(resp)
    }
}

/// Renders rows as a `POST /score` batch body. Values are written in
/// their shortest round-trip form, so the backend parses back the exact
/// `f64`s the router holds.
pub fn format_points_body(rows: &[Vec<f64>]) -> String {
    let mut out = String::with_capacity(16 + rows.len() * 24);
    out.push_str("{\"points\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_f64(&mut out, *v);
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    /// A tiny canned server: for each accepted connection, answers every
    /// request with the queued bodies in order, then closes.
    fn canned_server(replies_per_conn: Vec<Vec<String>>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for replies in replies_per_conn {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                for body in replies {
                    // Consume one request: head, then Content-Length bytes.
                    let mut len = 0usize;
                    loop {
                        let mut line = String::new();
                        if reader.read_line(&mut line).unwrap() == 0 {
                            return;
                        }
                        if let Some(v) = line
                            .to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(str::trim)
                        {
                            len = v.parse().unwrap();
                        }
                        if line == "\r\n" {
                            break;
                        }
                    }
                    let mut sink = vec![0u8; len];
                    reader.read_exact(&mut sink).unwrap();
                    write!(
                        stream,
                        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
                        body.len(),
                        body
                    )
                    .unwrap();
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn parse_response_head_extracts_status_length_and_keepalive() {
        let (status, len, keep) =
            parse_response_head(b"HTTP/1.1 200 OK\r\nContent-Length: 12\r\n\r\n").unwrap();
        assert_eq!((status, len, keep), (200, 12, true));
        let (status, _, keep) =
            parse_response_head(b"HTTP/1.1 503 Service Unavailable\r\nConnection: close\r\n\r\n")
                .unwrap();
        assert_eq!((status, keep), (503, false));
        assert!(parse_response_head(b"SMTP nope\r\n\r\n").is_err());
        assert!(
            parse_response_head(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n").is_err()
        );
    }

    #[test]
    fn pool_reuses_keepalive_connections() {
        let (addr, handle) = canned_server(vec![vec!["{\"a\":1}".into(), "{\"b\":2}".into()]]);
        let pool = Pool::new(addr, 4);
        let t = Duration::from_secs(5);
        let r1 = pool
            .request("POST", "/score", Some("{\"point\":[1]}"), t)
            .unwrap();
        assert_eq!(r1.status, 200);
        assert_eq!(r1.text().unwrap(), "{\"a\":1}");
        assert_eq!(pool.depth(), 1, "connection parked for reuse");
        let r2 = pool.request("GET", "/model", None, t).unwrap();
        assert_eq!(r2.text().unwrap(), "{\"b\":2}");
        assert_eq!(pool.depth(), 1, "same connection reused, not re-dialed");
        drop(pool);
        handle.join().unwrap();
    }

    #[test]
    fn pool_redials_when_the_pooled_connection_went_stale() {
        // Connection 1 serves one reply then closes; connection 2 serves
        // the retry.
        let (addr, handle) =
            canned_server(vec![vec!["{\"a\":1}".into()], vec!["{\"b\":2}".into()]]);
        let pool = Pool::new(addr, 4);
        let t = Duration::from_secs(5);
        let r1 = pool.request("GET", "/model", None, t).unwrap();
        assert_eq!(r1.text().unwrap(), "{\"a\":1}");
        assert_eq!(pool.depth(), 1);
        // The server has since torn the pooled socket down; the next
        // request silently falls back to a fresh dial.
        let r2 = pool.request("GET", "/model", None, t).unwrap();
        assert_eq!(r2.text().unwrap(), "{\"b\":2}");
        handle.join().unwrap();
    }

    #[test]
    fn points_body_round_trips_f64_exactly() {
        let rows = vec![vec![0.1, 2.0 / 3.0], vec![f64::MIN_POSITIVE, -1.5e300]];
        let body = format_points_body(&rows);
        let doc = json::parse(&body).unwrap();
        let parsed = doc.get("points").unwrap().as_array().unwrap();
        for (i, row) in rows.iter().enumerate() {
            let got = parsed[i].as_array().unwrap();
            for (j, v) in row.iter().enumerate() {
                assert_eq!(
                    got[j].as_f64().unwrap().to_bits(),
                    v.to_bits(),
                    "row {i} col {j}"
                );
            }
        }
    }
}
