//! Cross-connection request batching.
//!
//! Connection handler threads do not score; they enqueue their rows on a
//! shared [`Batcher`] and block on a reply channel. A small pool of batch
//! workers drains the queue: whatever jobs have accumulated while the
//! previous batch was scoring are coalesced — up to `max_batch` rows — and
//! scored in one [`hics_outlier::QueryEngine::score_batch`] call, which fans the rows out
//! over the engine's worker threads. Under load this amortises thread
//! fan-out and keeps all cores on one contiguous batch instead of
//! interleaving many tiny requests; when idle, a lone request is scored
//! immediately (workers sleep on a condvar, no polling).
//!
//! Workers resolve the engine through a shared [`EngineHandle`] **once per
//! batch**, so a hot reload takes effect at the next batch boundary while
//! the batch in flight finishes consistently against the model it started
//! with.

use hics_outlier::{EngineHandle, QueryError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

/// One enqueued scoring job: the rows of a single HTTP request.
struct Job {
    rows: Vec<Vec<f64>>,
    reply: mpsc::Sender<Vec<Result<f64, QueryError>>>,
}

/// Counters exposed on the stats endpoint.
#[derive(Debug, Default)]
pub struct BatchStats {
    /// Scoring requests accepted.
    pub requests: AtomicU64,
    /// Query rows scored.
    pub rows: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: AtomicU64,
}

struct Shared {
    queue: Mutex<(VecDeque<Job>, bool)>, // (jobs, shutdown)
    ready: Condvar,
}

/// The shared scoring queue plus its worker pool.
pub struct Batcher {
    shared: Arc<Shared>,
    stats: Arc<BatchStats>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Starts `workers` batch workers scoring against the engine currently
    /// installed in `handle`, coalescing up to `max_batch` rows per batch
    /// and giving each batch `threads` scoring threads.
    ///
    /// # Panics
    /// Panics if `workers`, `max_batch` or `threads` is zero.
    pub fn start(
        handle: Arc<EngineHandle>,
        workers: usize,
        max_batch: usize,
        threads: usize,
    ) -> Self {
        assert!(workers >= 1, "need at least one batch worker");
        assert!(max_batch >= 1, "max batch must be at least 1");
        assert!(threads >= 1, "need at least one scoring thread");
        let shared = Arc::new(Shared {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        });
        let stats = Arc::new(BatchStats::default());
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let handle = Arc::clone(&handle);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    worker_loop(&shared, &handle, &stats, max_batch, threads)
                })
            })
            .collect();
        Self {
            shared,
            stats,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues one request's rows and blocks until its scores are ready.
    /// Returns `None` if the batcher is shutting down.
    pub fn score(&self, rows: Vec<Vec<f64>>) -> Option<Vec<Result<f64, QueryError>>> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().expect("batcher lock");
            if q.1 {
                return None;
            }
            q.0.push_back(Job { rows, reply: tx });
        }
        self.shared.ready.notify_one();
        rx.recv().ok()
    }

    /// The batching counters.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Signals shutdown and joins the workers (idempotent). Queued jobs are
    /// dropped; their senders hang up, which unblocks any waiting
    /// connection.
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().expect("batcher lock");
            q.1 = true;
            q.0.clear();
        }
        self.shared.ready.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker list")
            .drain(..)
            .collect();
        for h in handles {
            h.join().expect("batch worker panicked");
        }
    }
}

/// One worker: sleep until jobs arrive, drain up to `max_batch` rows worth,
/// score them as a single contiguous batch against the currently installed
/// engine, distribute the replies.
fn worker_loop(
    shared: &Shared,
    handle: &EngineHandle,
    stats: &BatchStats,
    max_batch: usize,
    threads: usize,
) {
    loop {
        let mut jobs = {
            let mut guard = shared.queue.lock().expect("batcher lock");
            loop {
                if guard.1 {
                    return;
                }
                if !guard.0.is_empty() {
                    break;
                }
                guard = shared.ready.wait(guard).expect("batcher lock");
            }
            // Coalesce whole jobs until the row budget is reached (a single
            // over-sized job still goes through alone — never split replies).
            let mut jobs: Vec<Job> = Vec::new();
            let mut rows = 0usize;
            while let Some(job) = guard.0.front() {
                if !jobs.is_empty() && rows + job.rows.len() > max_batch {
                    break;
                }
                rows += job.rows.len();
                jobs.push(guard.0.pop_front().expect("non-empty front"));
                if rows >= max_batch {
                    break;
                }
            }
            jobs
        };

        // Move the rows out of the jobs (recording per-job lengths first to
        // split the replies) — no copy of the query payload.
        let lens: Vec<usize> = jobs.iter().map(|j| j.rows.len()).collect();
        let all_rows: Vec<Vec<f64>> = jobs
            .iter_mut()
            .flat_map(|j| std::mem::take(&mut j.rows))
            .collect();
        // One handle load per batch: every row of a batch scores against
        // the same model, and a reload lands at the next batch boundary.
        let engine = handle.load();
        let mut results = engine.score_batch(&all_rows, threads).into_iter();
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats
            .requests
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        stats
            .rows
            .fetch_add(all_rows.len() as u64, Ordering::Relaxed);
        if jobs.len() > 1 {
            stats.coalesced_batches.fetch_add(1, Ordering::Relaxed);
        }
        for (job, take) in jobs.into_iter().zip(lens) {
            let reply: Vec<_> = results.by_ref().take(take).collect();
            // A hung-up receiver just means the connection died; ignore.
            let _ = job.reply.send(reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hics_data::model::{
        apply_normalization, AggregationKind, HicsModel, ModelSubspace, NormKind, ScorerKind,
        ScorerSpec,
    };
    use hics_data::SyntheticConfig;
    use hics_outlier::{Engine, QueryEngine};

    fn engine() -> Arc<Engine> {
        let g = SyntheticConfig::new(80, 4).with_seed(5).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
        let model = HicsModel::new(
            data,
            NormKind::None,
            norm,
            vec![ModelSubspace {
                dims: vec![0, 1],
                contrast: 0.8,
            }],
            ScorerSpec {
                kind: ScorerKind::Lof,
                k: 5,
            },
            AggregationKind::Average,
        );
        Arc::new(Engine::from(QueryEngine::from_model(&model, 2)))
    }

    fn handle_for(engine: &Arc<Engine>) -> Arc<EngineHandle> {
        Arc::new(EngineHandle::from_arc(Arc::clone(engine)))
    }

    #[test]
    fn scores_flow_back_to_the_right_job() {
        let engine = engine();
        let batcher = Arc::new(Batcher::start(handle_for(&engine), 1, 64, 2));
        let rows_a = vec![vec![0.1, 0.2, 0.3, 0.4]];
        let rows_b = vec![vec![0.9, 0.8, 0.7, 0.6], vec![0.5, 0.5, 0.5, 0.5]];
        let got_a = batcher.score(rows_a.clone()).unwrap();
        let got_b = batcher.score(rows_b.clone()).unwrap();
        assert_eq!(got_a, engine.score_batch(&rows_a, 1));
        assert_eq!(got_b, engine.score_batch(&rows_b, 1));
        assert_eq!(batcher.stats().requests.load(Ordering::Relaxed), 2);
        assert_eq!(batcher.stats().rows.load(Ordering::Relaxed), 3);
        batcher.shutdown();
    }

    #[test]
    fn concurrent_submissions_coalesce_and_stay_ordered() {
        let engine = engine();
        let batcher = Arc::new(Batcher::start(handle_for(&engine), 2, 32, 2));
        let mut handles = Vec::new();
        for t in 0..8 {
            let batcher = Arc::clone(&batcher);
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let rows: Vec<Vec<f64>> = (0..5)
                    .map(|r| vec![t as f64 * 0.1, r as f64 * 0.07, 0.3, 0.9])
                    .collect();
                let got = batcher.score(rows.clone()).unwrap();
                let want = engine.score_batch(&rows, 1);
                assert_eq!(got, want, "thread {t}");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(batcher.stats().requests.load(Ordering::Relaxed), 8);
        assert_eq!(batcher.stats().rows.load(Ordering::Relaxed), 40);
        batcher.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_jobs_and_is_idempotent() {
        let engine = engine();
        let batcher = Batcher::start(handle_for(&engine), 1, 8, 1);
        batcher.shutdown();
        assert!(batcher.score(vec![vec![0.0; 4]]).is_none());
        batcher.shutdown();
    }

    #[test]
    fn swapped_engine_takes_effect_at_the_next_batch() {
        let first = engine();
        let handle = handle_for(&first);
        let batcher = Batcher::start(Arc::clone(&handle), 1, 8, 1);
        let row = vec![0.2, 0.4, 0.6, 0.8];
        let got = batcher.score(vec![row.clone()]).unwrap();
        assert_eq!(got, first.score_batch(std::slice::from_ref(&row), 1));

        // Install a model trained on different data; the very next job must
        // score against it.
        let g = SyntheticConfig::new(80, 4).with_seed(99).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
        let second = Arc::new(Engine::from(QueryEngine::from_model(
            &HicsModel::new(
                data,
                NormKind::None,
                norm,
                vec![ModelSubspace {
                    dims: vec![1, 3],
                    contrast: 0.5,
                }],
                ScorerSpec {
                    kind: ScorerKind::KnnMean,
                    k: 3,
                },
                AggregationKind::Average,
            ),
            1,
        )));
        handle.swap_arc(Arc::clone(&second));
        let got = batcher.score(vec![row.clone()]).unwrap();
        assert_eq!(got, second.score_batch(std::slice::from_ref(&row), 1));
        assert_ne!(got, first.score_batch(&[row], 1), "scores must change");
        batcher.shutdown();
    }

    #[test]
    fn oversized_single_job_is_not_split() {
        let engine = engine();
        let batcher = Batcher::start(handle_for(&engine), 1, 2, 1);
        let rows: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64 * 0.1; 4]).collect();
        let got = batcher.score(rows.clone()).unwrap();
        assert_eq!(got.len(), 7);
        assert_eq!(got, engine.score_batch(&rows, 1));
        batcher.shutdown();
    }
}
