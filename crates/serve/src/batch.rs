//! Cross-connection request batching.
//!
//! Connections do not score; they enqueue their rows on a shared
//! [`Batcher`] and are resolved through a completion callback (the blocking
//! [`Batcher::score`] wrapper layers a channel over it for synchronous
//! callers and tests). A small pool of batch workers drains the queue:
//! whatever jobs have accumulated while the previous batch was scoring are
//! coalesced — up to `max_batch` rows — and scored in one
//! [`hics_outlier::QueryEngine::score_batch`] call, which fans the rows out
//! over the engine's worker threads. Under load this amortises thread
//! fan-out and keeps all cores on one contiguous batch instead of
//! interleaving many tiny requests; when idle, a lone request is scored
//! immediately (workers sleep on a condvar, no polling).
//!
//! **Tail latency:** a worker that has claimed jobs may optionally linger
//! up to `max_wait` for more arrivals before scoring (deeper batches at a
//! bounded latency cost). The default `max_wait` of zero preserves the
//! score-immediately behaviour — a lone request is never held hostage by
//! batch formation.
//!
//! **Observability:** all counters live in [`BatchStats`] — registry-backed
//! [`hics_obs`] instruments, so `/stats` and `/metrics` read the same
//! atomics. Each batch records its size (exact below 512 rows, so the
//! legacy power-of-two `/stats` buckets re-bin exactly), how long its jobs
//! waited in the queue, and how long scoring itself took — the queue-wait
//! vs score-time split that tells a deployment whether `--batch-wait-us`
//! is buying depth or just adding latency.
//!
//! Workers resolve the engine through a shared [`EngineHandle`] **once per
//! batch**, so a hot reload takes effect at the next batch boundary while
//! the batch in flight finishes consistently against the model it started
//! with.

use hics_obs::{Counter, Histogram, Registry};
use hics_outlier::{EngineHandle, QueryError};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The scores of one executed batch job plus whether a remote engine
/// served it degraded (folded over a partial shard set — see
/// [`hics_outlier::RemoteEngine`]). In-process engines never set
/// `partial`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchScores {
    /// One result per submitted row, in submission order.
    pub results: Vec<Result<f64, QueryError>>,
    /// True when the scores were folded over surviving shards only.
    pub partial: bool,
}

/// The result of one job: per-row scores, or `None` when the batcher shut
/// down before the job was scored.
pub type BatchReply = Option<BatchScores>;

/// One enqueued scoring job: the rows of a single HTTP request plus the
/// completion invoked with its scores (exactly once, possibly on a worker
/// thread — or with `None` on shutdown).
struct Job {
    rows: Vec<Vec<f64>>,
    enqueued: Instant,
    reply: Box<dyn FnOnce(BatchReply) + Send>,
    /// Trace context captured from the submitting thread so a remote
    /// engine's fan-out can parent its spans under the originating request
    /// even though scoring happens on a batch-worker thread.
    trace: Option<hics_obs::TraceContext>,
}

/// Upper bounds of the legacy `/stats` batch-size buckets (rows per
/// executed batch); the last bucket is open-ended.
pub const BATCH_SIZE_BUCKETS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Batch-size histograms keep every count below `2^8 = 256 … 511` exact,
/// so the legacy power-of-two `/stats` buckets re-bin without error.
const SIZE_SUB_BITS: u32 = 8;
const SIZE_MAX: u64 = 1 << 20;
/// Latency histograms resolve nanoseconds up to ~68 s at `2^-5` error.
const LATENCY_SUB_BITS: u32 = 5;
const LATENCY_MAX_NS: u64 = 1 << 36;
const NANOS_TO_SECONDS: f64 = 1e-9;

/// The batcher's instruments — [`hics_obs`] counters and histograms, either
/// free-standing ([`BatchStats::default`]) or registered into a server's
/// shared registry so `/stats` and `/metrics` read the same atomics.
#[derive(Debug)]
pub struct BatchStats {
    /// Scoring requests accepted.
    pub requests: Arc<Counter>,
    /// Query rows scored.
    pub rows: Arc<Counter>,
    /// Batches executed.
    pub batches: Arc<Counter>,
    /// Batches that coalesced more than one request.
    pub coalesced_batches: Arc<Counter>,
    /// Nanoseconds each job waited in the queue before its batch started
    /// scoring — the cost side of the `--batch-wait-us` linger.
    pub queue_wait: Arc<Histogram>,
    /// Nanoseconds each batch spent inside `score_batch`.
    pub score_time: Arc<Histogram>,
    /// Rows per executed batch.
    pub batch_size: Arc<Histogram>,
}

impl Default for BatchStats {
    fn default() -> Self {
        Self::unregistered()
    }
}

impl BatchStats {
    /// Free-standing instruments, not attached to any registry — for
    /// embedders that use [`Batcher::start`] directly.
    pub fn unregistered() -> Self {
        Self {
            requests: Arc::new(Counter::new()),
            rows: Arc::new(Counter::new()),
            batches: Arc::new(Counter::new()),
            coalesced_batches: Arc::new(Counter::new()),
            queue_wait: Arc::new(Histogram::new(LATENCY_SUB_BITS, LATENCY_MAX_NS)),
            score_time: Arc::new(Histogram::new(LATENCY_SUB_BITS, LATENCY_MAX_NS)),
            batch_size: Arc::new(Histogram::new(SIZE_SUB_BITS, SIZE_MAX)),
        }
    }

    /// Instruments registered into `registry` under the `hics_*` metric
    /// names, so one scrape sees them alongside the rest of the server.
    pub fn registered(registry: &Registry) -> Self {
        Self {
            requests: registry.counter("hics_requests_total", "Scoring requests accepted."),
            rows: registry.counter("hics_rows_total", "Query rows scored."),
            batches: registry.counter("hics_batches_total", "Batches executed."),
            coalesced_batches: registry.counter(
                "hics_coalesced_batches_total",
                "Batches that coalesced more than one request.",
            ),
            queue_wait: registry.histogram(
                "hics_batch_queue_wait_seconds",
                "Time jobs wait in the batch queue before scoring starts.",
                LATENCY_SUB_BITS,
                LATENCY_MAX_NS,
                NANOS_TO_SECONDS,
            ),
            score_time: registry.histogram(
                "hics_batch_score_seconds",
                "Time each batch spends scoring.",
                LATENCY_SUB_BITS,
                LATENCY_MAX_NS,
                NANOS_TO_SECONDS,
            ),
            batch_size: registry.histogram(
                "hics_batch_size",
                "Rows per scored batch.",
                SIZE_SUB_BITS,
                SIZE_MAX,
                1.0,
            ),
        }
    }

    /// A snapshot of the batch-size histogram in the legacy `/stats` shape
    /// (same order as [`BATCH_SIZE_BUCKETS`], plus the open-ended overflow
    /// bucket). Exact: the underlying histogram keeps one bucket per value
    /// below 512, so the power-of-two boundaries re-bin without error.
    pub fn batch_size_snapshot(&self) -> [u64; BATCH_SIZE_BUCKETS.len() + 1] {
        let snap = self.batch_size.snapshot();
        let mut out = [0u64; BATCH_SIZE_BUCKETS.len() + 1];
        let mut prev = 0u64;
        for (slot, &limit) in out.iter_mut().zip(BATCH_SIZE_BUCKETS.iter()) {
            let le = snap.count_le(limit);
            *slot = le - prev;
            prev = le;
        }
        out[BATCH_SIZE_BUCKETS.len()] = snap.count() - prev;
        out
    }
}

struct Shared {
    queue: Mutex<(VecDeque<Job>, bool)>, // (jobs, shutdown)
    ready: Condvar,
}

/// The shared scoring queue plus its worker pool.
pub struct Batcher {
    shared: Arc<Shared>,
    stats: Arc<BatchStats>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Starts `workers` batch workers scoring against the engine currently
    /// installed in `handle`, coalescing up to `max_batch` rows per batch
    /// and giving each batch `threads` scoring threads. Batches are scored
    /// the moment a worker is free (`max_wait` zero); see
    /// [`Batcher::start_with_max_wait`] to trade latency for depth.
    ///
    /// # Panics
    /// Panics if `workers`, `max_batch` or `threads` is zero.
    pub fn start(
        handle: Arc<EngineHandle>,
        workers: usize,
        max_batch: usize,
        threads: usize,
    ) -> Self {
        Self::start_with_max_wait(handle, workers, max_batch, threads, Duration::ZERO)
    }

    /// [`Batcher::start`] with a batch-formation deadline: a worker that
    /// claimed fewer than `max_batch` rows lingers up to `max_wait` for
    /// more arrivals before scoring. Zero (the default) scores immediately.
    ///
    /// # Panics
    /// Panics if `workers`, `max_batch` or `threads` is zero.
    pub fn start_with_max_wait(
        handle: Arc<EngineHandle>,
        workers: usize,
        max_batch: usize,
        threads: usize,
        max_wait: Duration,
    ) -> Self {
        Self::start_with_stats(
            handle,
            workers,
            max_batch,
            threads,
            max_wait,
            Arc::new(BatchStats::default()),
        )
    }

    /// [`Batcher::start_with_max_wait`] recording into caller-provided
    /// instruments — the server passes registry-backed [`BatchStats`] here
    /// so the batcher's counters appear on `/stats` and `/metrics`.
    ///
    /// # Panics
    /// Panics if `workers`, `max_batch` or `threads` is zero.
    pub fn start_with_stats(
        handle: Arc<EngineHandle>,
        workers: usize,
        max_batch: usize,
        threads: usize,
        max_wait: Duration,
        stats: Arc<BatchStats>,
    ) -> Self {
        assert!(workers >= 1, "need at least one batch worker");
        assert!(max_batch >= 1, "max batch must be at least 1");
        assert!(threads >= 1, "need at least one scoring thread");
        let shared = Arc::new(Shared {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let handle = Arc::clone(&handle);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    worker_loop(&shared, &handle, &stats, max_batch, threads, max_wait)
                })
            })
            .collect();
        Self {
            shared,
            stats,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues one request's rows without blocking; `reply` is invoked
    /// exactly once — with the scores when the batch executes (on a worker
    /// thread), or with `None` if the batcher shuts down first (immediately,
    /// on the caller's thread, when it is already down).
    pub fn submit(&self, rows: Vec<Vec<f64>>, reply: Box<dyn FnOnce(BatchReply) + Send>) {
        {
            let mut q = self.shared.queue.lock().expect("batcher lock");
            if !q.1 {
                q.0.push_back(Job {
                    rows,
                    enqueued: Instant::now(),
                    reply,
                    trace: hics_obs::trace::current(),
                });
                drop(q);
                self.shared.ready.notify_one();
                return;
            }
        }
        reply(None);
    }

    /// Enqueues one request's rows and blocks until its scores are ready.
    /// Returns `None` if the batcher is shutting down.
    pub fn score(&self, rows: Vec<Vec<f64>>) -> BatchReply {
        let (tx, rx) = mpsc::channel();
        self.submit(
            rows,
            Box::new(move |reply| {
                let _ = tx.send(reply);
            }),
        );
        rx.recv().ok().flatten()
    }

    /// The batching counters.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// A cloneable reference to the batching counters.
    pub fn stats_arc(&self) -> Arc<BatchStats> {
        Arc::clone(&self.stats)
    }

    /// Signals shutdown and joins the workers (idempotent). Queued jobs are
    /// completed with `None`, which unblocks any waiting connection.
    pub fn shutdown(&self) {
        let orphans: Vec<Job> = {
            let mut q = self.shared.queue.lock().expect("batcher lock");
            q.1 = true;
            q.0.drain(..).collect()
        };
        self.shared.ready.notify_all();
        for job in orphans {
            (job.reply)(None);
        }
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker list")
            .drain(..)
            .collect();
        for h in handles {
            h.join().expect("batch worker panicked");
        }
    }
}

/// Moves whole jobs from the queue into `jobs` until the row budget is
/// reached (a single over-sized job still goes through alone — never split
/// replies). Returns the accumulated row count.
fn drain_jobs(
    queue: &mut VecDeque<Job>,
    jobs: &mut Vec<Job>,
    mut rows: usize,
    max_batch: usize,
) -> usize {
    while let Some(job) = queue.front() {
        if !jobs.is_empty() && rows + job.rows.len() > max_batch {
            break;
        }
        rows += job.rows.len();
        jobs.push(queue.pop_front().expect("non-empty front"));
        if rows >= max_batch {
            break;
        }
    }
    rows
}

/// One worker: sleep until jobs arrive, drain up to `max_batch` rows worth
/// (lingering up to `max_wait` for stragglers when under budget), score
/// them as a single contiguous batch against the currently installed
/// engine, distribute the replies.
fn worker_loop(
    shared: &Shared,
    handle: &EngineHandle,
    stats: &BatchStats,
    max_batch: usize,
    threads: usize,
    max_wait: Duration,
) {
    loop {
        let mut jobs: Vec<Job> = Vec::new();
        let shutdown = {
            let mut guard = shared.queue.lock().expect("batcher lock");
            loop {
                if guard.1 {
                    break;
                }
                if !guard.0.is_empty() {
                    break;
                }
                guard = shared.ready.wait(guard).expect("batcher lock");
            }
            let mut rows = drain_jobs(&mut guard.0, &mut jobs, 0, max_batch);
            if !guard.1 && max_wait > Duration::ZERO && rows < max_batch && !jobs.is_empty() {
                // Linger for stragglers: deeper batches at a bounded
                // latency cost. The deadline caps how long the first
                // claimed job can be delayed.
                let deadline = Instant::now() + max_wait;
                loop {
                    let now = Instant::now();
                    if guard.1 || rows >= max_batch || now >= deadline {
                        break;
                    }
                    let (g, timeout) = shared
                        .ready
                        .wait_timeout(guard, deadline - now)
                        .expect("batcher lock");
                    guard = g;
                    rows = drain_jobs(&mut guard.0, &mut jobs, rows, max_batch);
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            guard.1
        };
        if shutdown {
            // Jobs claimed before the flag flipped still complete — with
            // `None`, the same signal `Batcher::shutdown` gives the queue.
            for job in jobs {
                (job.reply)(None);
            }
            return;
        }

        // Move the rows out of the jobs (recording per-job lengths first to
        // split the replies) — no copy of the query payload.
        let lens: Vec<usize> = jobs.iter().map(|j| j.rows.len()).collect();
        let all_rows: Vec<Vec<f64>> = jobs
            .iter_mut()
            .flat_map(|j| std::mem::take(&mut j.rows))
            .collect();
        // One handle load per batch: every row of a batch scores against
        // the same model, and a reload lands at the next batch boundary.
        let engine = handle.load();
        let score_start = Instant::now();
        for job in &jobs {
            stats.queue_wait.record(
                score_start
                    .saturating_duration_since(job.enqueued)
                    .as_nanos() as u64,
            );
        }
        // A coalesced batch carries several requests' trace contexts but
        // scores in one engine call; attribute the fan-out to the first
        // traced job (best effort — the alternative is splitting the batch).
        let trace = jobs.iter().find_map(|j| j.trace);
        hics_obs::trace::set_current(trace);
        let (results, partial) = engine.score_batch_partial(&all_rows, threads);
        hics_obs::trace::set_current(None);
        let mut results = results.into_iter();
        stats
            .score_time
            .record(score_start.elapsed().as_nanos() as u64);
        stats.batches.inc();
        stats.requests.add(jobs.len() as u64);
        stats.rows.add(all_rows.len() as u64);
        if jobs.len() > 1 {
            stats.coalesced_batches.inc();
        }
        stats.batch_size.record(all_rows.len() as u64);
        for (job, take) in jobs.into_iter().zip(lens) {
            let reply: Vec<_> = results.by_ref().take(take).collect();
            (job.reply)(Some(BatchScores {
                results: reply,
                partial,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hics_data::model::{
        apply_normalization, AggregationKind, HicsModel, ModelSubspace, NormKind, ScorerKind,
        ScorerSpec,
    };
    use hics_data::SyntheticConfig;
    use hics_outlier::{Engine, QueryEngine};

    fn engine() -> Arc<Engine> {
        let g = SyntheticConfig::new(80, 4).with_seed(5).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
        let model = HicsModel::new(
            data,
            NormKind::None,
            norm,
            vec![ModelSubspace {
                dims: vec![0, 1],
                contrast: 0.8,
            }],
            ScorerSpec {
                kind: ScorerKind::Lof,
                k: 5,
            },
            AggregationKind::Average,
        );
        Arc::new(Engine::from(QueryEngine::from_model(&model, 2)))
    }

    fn handle_for(engine: &Arc<Engine>) -> Arc<EngineHandle> {
        Arc::new(EngineHandle::from_arc(Arc::clone(engine)))
    }

    #[test]
    fn scores_flow_back_to_the_right_job() {
        let engine = engine();
        let batcher = Arc::new(Batcher::start(handle_for(&engine), 1, 64, 2));
        let rows_a = vec![vec![0.1, 0.2, 0.3, 0.4]];
        let rows_b = vec![vec![0.9, 0.8, 0.7, 0.6], vec![0.5, 0.5, 0.5, 0.5]];
        let got_a = batcher.score(rows_a.clone()).unwrap();
        let got_b = batcher.score(rows_b.clone()).unwrap();
        assert!(!got_a.partial && !got_b.partial);
        assert_eq!(got_a.results, engine.score_batch(&rows_a, 1));
        assert_eq!(got_b.results, engine.score_batch(&rows_b, 1));
        assert_eq!(batcher.stats().requests.get(), 2);
        assert_eq!(batcher.stats().rows.get(), 3);
        batcher.shutdown();
    }

    #[test]
    fn concurrent_submissions_coalesce_and_stay_ordered() {
        let engine = engine();
        let batcher = Arc::new(Batcher::start(handle_for(&engine), 2, 32, 2));
        let mut handles = Vec::new();
        for t in 0..8 {
            let batcher = Arc::clone(&batcher);
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let rows: Vec<Vec<f64>> = (0..5)
                    .map(|r| vec![t as f64 * 0.1, r as f64 * 0.07, 0.3, 0.9])
                    .collect();
                let got = batcher.score(rows.clone()).unwrap();
                let want = engine.score_batch(&rows, 1);
                assert_eq!(got.results, want, "thread {t}");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(batcher.stats().requests.get(), 8);
        assert_eq!(batcher.stats().rows.get(), 40);
        batcher.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_jobs_and_is_idempotent() {
        let engine = engine();
        let batcher = Batcher::start(handle_for(&engine), 1, 8, 1);
        batcher.shutdown();
        assert!(batcher.score(vec![vec![0.0; 4]]).is_none());
        batcher.shutdown();
    }

    #[test]
    fn swapped_engine_takes_effect_at_the_next_batch() {
        let first = engine();
        let handle = handle_for(&first);
        let batcher = Batcher::start(Arc::clone(&handle), 1, 8, 1);
        let row = vec![0.2, 0.4, 0.6, 0.8];
        let got = batcher.score(vec![row.clone()]).unwrap();
        assert_eq!(
            got.results,
            first.score_batch(std::slice::from_ref(&row), 1)
        );

        // Install a model trained on different data; the very next job must
        // score against it.
        let g = SyntheticConfig::new(80, 4).with_seed(99).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
        let second = Arc::new(Engine::from(QueryEngine::from_model(
            &HicsModel::new(
                data,
                NormKind::None,
                norm,
                vec![ModelSubspace {
                    dims: vec![1, 3],
                    contrast: 0.5,
                }],
                ScorerSpec {
                    kind: ScorerKind::KnnMean,
                    k: 3,
                },
                AggregationKind::Average,
            ),
            1,
        )));
        handle.swap_arc(Arc::clone(&second));
        let got = batcher.score(vec![row.clone()]).unwrap();
        assert_eq!(
            got.results,
            second.score_batch(std::slice::from_ref(&row), 1)
        );
        assert_ne!(
            got.results,
            first.score_batch(&[row], 1),
            "scores must change"
        );
        batcher.shutdown();
    }

    #[test]
    fn oversized_single_job_is_not_split() {
        let engine = engine();
        let batcher = Batcher::start(handle_for(&engine), 1, 2, 1);
        let rows: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64 * 0.1; 4]).collect();
        let got = batcher.score(rows.clone()).unwrap();
        assert_eq!(got.results.len(), 7);
        assert_eq!(got.results, engine.score_batch(&rows, 1));
        batcher.shutdown();
    }

    #[test]
    fn submit_completes_via_callback() {
        let engine = engine();
        let batcher = Batcher::start(handle_for(&engine), 1, 8, 1);
        let (tx, rx) = mpsc::channel();
        let rows = vec![vec![0.3, 0.1, 0.7, 0.2]];
        batcher.submit(
            rows.clone(),
            Box::new(move |reply| {
                let _ = tx.send(reply);
            }),
        );
        let got = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("reply arrives")
            .expect("not shut down");
        assert_eq!(got.results, engine.score_batch(&rows, 1));
        batcher.shutdown();
    }

    #[test]
    fn submit_after_shutdown_completes_with_none() {
        let engine = engine();
        let batcher = Batcher::start(handle_for(&engine), 1, 8, 1);
        batcher.shutdown();
        let (tx, rx) = mpsc::channel();
        batcher.submit(
            vec![vec![0.0; 4]],
            Box::new(move |reply| {
                let _ = tx.send(reply);
            }),
        );
        assert_eq!(rx.recv().expect("callback ran"), None);
    }

    #[test]
    fn batch_sizes_land_in_histogram_buckets() {
        let engine = engine();
        let batcher = Batcher::start(handle_for(&engine), 1, 64, 1);
        batcher.score(vec![vec![0.1; 4]]).unwrap(); // 1 row → bucket ≤1
        batcher
            .score((0..5).map(|i| vec![i as f64 * 0.2; 4]).collect())
            .unwrap(); // 5 rows → bucket ≤8
        let hist = batcher.stats().batch_size_snapshot();
        assert_eq!(hist[0], 1, "one single-row batch: {hist:?}");
        assert_eq!(hist[3], 1, "one 5-row batch in the ≤8 bucket: {hist:?}");
        assert_eq!(hist.iter().sum::<u64>(), 2);
        batcher.shutdown();
    }

    /// With a max-wait deadline, jobs submitted in quick succession coalesce
    /// into one batch even when a worker is free — and the deadline bounds
    /// the wait, so the batch still executes promptly.
    #[test]
    fn max_wait_coalesces_quick_successors() {
        let engine = engine();
        let batcher = Arc::new(Batcher::start_with_max_wait(
            handle_for(&engine),
            1,
            64,
            1,
            Duration::from_millis(40),
        ));
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let tx = tx.clone();
            batcher.submit(
                vec![vec![0.4, 0.6, 0.2, 0.8]],
                Box::new(move |reply| {
                    let _ = tx.send(reply);
                }),
            );
        }
        for _ in 0..4 {
            assert!(rx
                .recv_timeout(Duration::from_secs(5))
                .expect("reply arrives")
                .is_some());
        }
        // All four jobs should have landed in few (ideally one) batches.
        let batches = batcher.stats().batches.get();
        assert!(batches <= 2, "expected coalescing, got {batches} batches");
        assert_eq!(batcher.stats().requests.get(), 4);
        batcher.shutdown();
    }
}
