//! The scoring server. On Linux this is a non-blocking epoll reactor core:
//! [`ServeConfig::reactor_threads`] reactor threads, each owning its own
//! `SO_REUSEPORT` listener, epoll instance and connection slab, drive
//! per-connection state machines ([`crate::conn`]) with level-triggered
//! readiness — no thread-per-connection, no blocking I/O anywhere on the
//! serving path. `/score` rows are handed to the cross-connection
//! [`Batcher`] and the connection parks (zero threads held) until the
//! batch completion is funnelled back through an eventfd; responses drain
//! through per-connection outbound buffers with explicit backpressure.
//! On other platforms a blocking thread-per-connection fallback serves the
//! identical wire protocol.
//!
//! The engine is resolved through an atomically swappable
//! [`EngineHandle`] so a model can be hot-reloaded under live traffic.
//!
//! Endpoints (the v2 wire protocol):
//!
//! | method, path | behaviour |
//! |---|---|
//! | `POST /score` | body `{"points": [[f64; d], …]}` → `{"scores": […]}`, or `{"point": [f64; d]}` → `{"score": s}` (v1-compatible, byte for byte) |
//! | `POST /v2/score` | NDJSON streaming: one JSON point per line in (`[…]` or `{"point": […]}`; `Content-Length` or chunked), one scored line out per non-empty line, errors reported in-stream |
//! | `POST /admin/reload` | loads a new artifact (zero-copy mmap), validates it, atomically swaps it in; body `{"model": path?, "index": "brute"\|"vptree"?}` or empty to re-load the configured source |
//! | `GET /healthz` | `{"status":"ok"}` liveness probe |
//! | `GET /model` | model shape, engine generation, neighbour-index kind and build stats |
//! | `GET /stats` | request/row/batch/stream/connection counters, the batch-size histogram, and neighbour-index stats |
//! | `GET /metrics` | the same instruments (plus per-stage request latency, reactor I/O and fit counters) in Prometheus text exposition |
//!
//! Per-row failures on `/score` (wrong arity, non-finite values) fail the
//! whole request with `400` and a row-indexed message — callers batch their
//! own rows, so partial success would be ambiguous. `/v2/score` is the
//! opposite contract: each line succeeds or fails **individually**, and a
//! malformed line never kills the stream.
//!
//! A stalled or hostile streaming client cannot pin anything: reads inside
//! a stream run under [`ServeConfig::stream_idle`] (enforced by reactor
//! timers), per-line buffers are bounded by [`ServeConfig::max_line_bytes`],
//! a stream that has pushed more than [`ServeConfig::max_stream_bytes`] is
//! terminated, and a peer that stops *reading* its scores only fills its
//! connection's outbound buffer to [`ServeConfig::high_water`] before the
//! server stops consuming its input.

use crate::batch::{BatchReply, BatchStats, Batcher};
use crate::http::{error_body, Request, RequestHead};
#[cfg(not(target_os = "linux"))]
use crate::http::{
    finish_chunked, read_head, read_sized_body, write_chunk, write_chunked_head, write_response,
    write_response_traced, BodyError, BodyReader, LineRead, RequestError,
};
use crate::json::{self, Json};
#[cfg(not(target_os = "linux"))]
use crate::metrics::content_type_for;
use crate::metrics::{EngineRecorder, ServeMetrics};
#[cfg(not(target_os = "linux"))]
use hics_obs::Stage;
use hics_obs::{Counter, Gauge, Registry, Span, SpanStatus, Timeline, Tracer, STAGES};
use hics_outlier::{Engine, EngineHandle, IndexKind};
#[cfg(not(target_os = "linux"))]
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Closures that wake every reactor out of its poll wait — shutdown
/// invokes them all so each listener thread notices the stop flag.
pub(crate) type WakeSet = Arc<Mutex<Vec<Box<dyn Fn() + Send + Sync>>>>;

/// A read-only admin endpoint body producer (see [`Server::register_admin`]).
pub type AdminHandler = Arc<dyn Fn() -> (u16, String) + Send + Sync>;

/// Extra `GET` routes registered by the embedder (e.g. the scatter-gather
/// router's `/route`), consulted after the built-in endpoints.
pub(crate) type AdminRoutes = Arc<Mutex<Vec<(String, AdminHandler)>>>;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port `0` picks a free port).
    pub addr: String,
    /// Scoring threads per batch (defaults to available parallelism).
    pub threads: usize,
    /// Maximum rows coalesced into one batch.
    pub max_batch: usize,
    /// Batch worker count (batches scored concurrently).
    pub workers: usize,
    /// Idle keep-alive timeout per connection (between requests).
    pub keep_alive: Duration,
    /// Idle timeout **inside** a streaming request body: a `/v2/score`
    /// client that sends nothing for this long is disconnected, so a
    /// stalled stream cannot hold its connection at the keep-alive
    /// timescale.
    pub stream_idle: Duration,
    /// Upper bound on one NDJSON line (bytes). Longer lines are consumed,
    /// discarded and reported in-stream — the buffer never grows past this.
    pub max_line_bytes: usize,
    /// Upper bound on total bytes one streaming request may send (framing
    /// included). Exceeding it terminates the stream.
    pub max_stream_bytes: usize,
    /// Maximum concurrent connections; further clients get an immediate
    /// `503` instead of a slab slot (keeps fd usage bounded under
    /// overload).
    pub max_connections: usize,
    /// Reactor (event-loop) threads, each with its own `SO_REUSEPORT`
    /// listener. `0` (the default) sizes from available parallelism,
    /// capped at 4 — scoring wants the cores more than the event loops do.
    /// Ignored by the non-Linux fallback.
    pub reactor_threads: usize,
    /// How long a batch worker lingers for more rows before scoring a
    /// non-full batch (see [`Batcher::start_with_max_wait`]). Zero scores
    /// immediately.
    pub batch_max_wait: Duration,
    /// Backpressure threshold per connection (bytes): once this much
    /// output is queued for a peer that is not draining it, the server
    /// stops reading that connection's input until the buffer empties.
    pub high_water: usize,
    /// Whether to record per-request stage timelines into the latency
    /// histograms (on by default). Turning it off removes the monotonic
    /// clock reads from the request path; counters stay live either way.
    pub instrument: bool,
    /// Format of structured stderr log lines (slow-query reports).
    pub log_format: LogFormat,
    /// When set, any request whose total latency reaches this threshold
    /// is logged to stderr with its full per-stage timeline.
    pub slow_query: Option<Duration>,
}

/// Format of structured stderr log lines emitted by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Human-readable single-line text (the default).
    #[default]
    Text,
    /// One JSON object per line, machine-parsable.
    Json,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            threads: hics_outlier::parallel::available_threads(),
            max_batch: 512,
            workers: 1,
            keep_alive: Duration::from_secs(30),
            stream_idle: Duration::from_secs(10),
            max_line_bytes: 64 * 1024,
            max_stream_bytes: 256 * 1024 * 1024,
            max_connections: 1024,
            reactor_threads: 0,
            batch_max_wait: Duration::ZERO,
            high_water: 256 * 1024,
            instrument: true,
            log_format: LogFormat::Text,
            slow_query: None,
        }
    }
}

/// Counters for the `/v2/score` streaming endpoint.
#[derive(Debug)]
pub struct StreamStats {
    /// Streaming requests accepted.
    pub streams: Arc<Counter>,
    /// NDJSON lines scored successfully.
    pub lines: Arc<Counter>,
    /// In-stream error lines emitted.
    pub errors: Arc<Counter>,
}

impl Default for StreamStats {
    fn default() -> Self {
        Self {
            streams: Arc::new(Counter::new()),
            lines: Arc::new(Counter::new()),
            errors: Arc::new(Counter::new()),
        }
    }
}

impl StreamStats {
    /// Counters registered into `registry` under the `hics_stream*` names,
    /// so one scrape sees them alongside the rest of the server.
    pub fn registered(registry: &Registry) -> Self {
        Self {
            streams: registry.counter(
                "hics_streams_total",
                "Streaming (/v2/score) requests accepted.",
            ),
            lines: registry.counter(
                "hics_stream_lines_total",
                "NDJSON lines scored successfully.",
            ),
            errors: registry.counter("hics_stream_errors_total", "In-stream error lines emitted."),
        }
    }
}

/// Connection-level counters for the serving core.
#[derive(Debug)]
pub struct ConnStats {
    /// Connections accepted into the serving core.
    pub accepted: Arc<Counter>,
    /// Connections currently open.
    pub active: Arc<Gauge>,
    /// Connections refused with `503` at the connection limit.
    pub shed: Arc<Counter>,
}

impl Default for ConnStats {
    fn default() -> Self {
        Self {
            accepted: Arc::new(Counter::new()),
            active: Arc::new(Gauge::new()),
            shed: Arc::new(Counter::new()),
        }
    }
}

impl ConnStats {
    /// Counters registered into `registry` under the `hics_connections*`
    /// names.
    pub fn registered(registry: &Registry) -> Self {
        Self {
            accepted: registry.counter(
                "hics_connections_accepted_total",
                "Connections accepted into the serving core.",
            ),
            active: registry.gauge("hics_connections_active", "Connections currently open."),
            shed: registry.counter(
                "hics_connections_shed_total",
                "Connections refused with 503 at the connection limit.",
            ),
        }
    }
}

/// Where `/admin/reload` gets its artifact from when the request body does
/// not name one, plus the backend preference reloaded engines inherit.
#[derive(Debug, Default)]
pub(crate) struct ReloadSource {
    path: Option<PathBuf>,
    index: Option<IndexKind>,
}

/// Everything a connection needs — cheap to clone per reactor/handler.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) handle: Arc<EngineHandle>,
    pub(crate) batcher: Arc<Batcher>,
    pub(crate) reload: Arc<Mutex<ReloadSource>>,
    pub(crate) stream_stats: Arc<StreamStats>,
    pub(crate) conns: Arc<ConnStats>,
    pub(crate) metrics: Arc<ServeMetrics>,
    pub(crate) config: Arc<ServeConfig>,
    pub(crate) reactors: usize,
    pub(crate) admin: AdminRoutes,
    pub(crate) tracer: Arc<Tracer>,
}

/// A running scoring server.
pub struct Server {
    listener: TcpListener,
    ctx: Ctx,
    stop: Arc<AtomicBool>,
    wakes: WakeSet,
}

/// Handle to stop a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    wakes: WakeSet,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// Asks the serving loops to exit. Safe to call more than once.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Kick every reactor out of its poll wait…
        for wake in self.wakes.lock().expect("wake set").iter() {
            wake();
        }
        // …and unblock a (blocking, pre-reactor) accept with a throwaway
        // connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds the listen socket and starts the batch workers (the serving
    /// loop does not run until [`Server::run`]). The engine is wrapped in a
    /// fresh [`EngineHandle`]; use [`Server::bind_handle`] to share one.
    pub fn bind(engine: impl Into<Engine>, config: ServeConfig) -> std::io::Result<Self> {
        Self::bind_handle(Arc::new(EngineHandle::new(engine)), config)
    }

    /// Like [`Server::bind`] over an existing (possibly shared) engine
    /// handle — the caller can hot-swap engines through it at any time.
    pub fn bind_handle(handle: Arc<EngineHandle>, config: ServeConfig) -> std::io::Result<Self> {
        Self::bind_handle_with_registry(handle, config, Arc::new(Registry::new()))
    }

    /// Like [`Server::bind_handle`], recording into a caller-provided
    /// [`Registry`] — instruments the embedder registered beforehand (e.g.
    /// the router's `hics_route_*` family) show up on this server's
    /// `/metrics` alongside the serving core's own.
    pub fn bind_handle_with_registry(
        handle: Arc<EngineHandle>,
        config: ServeConfig,
        registry: Arc<Registry>,
    ) -> std::io::Result<Self> {
        Self::bind_handle_with_obs(handle, config, registry, Arc::new(Tracer::default()))
    }

    /// Like [`Server::bind_handle_with_registry`] over a caller-provided
    /// [`Tracer`] — an embedder (e.g. the scatter-gather router) shares one
    /// tracer between this server's request spans and its own, so a routed
    /// request's spans all land in the same trace store behind `/trace`.
    pub fn bind_handle_with_obs(
        handle: Arc<EngineHandle>,
        config: ServeConfig,
        registry: Arc<Registry>,
        tracer: Arc<Tracer>,
    ) -> std::io::Result<Self> {
        #[cfg(target_os = "linux")]
        let listener = crate::reactor::bind_listener(&config.addr)?;
        #[cfg(not(target_os = "linux"))]
        let listener = TcpListener::bind(&config.addr)?;
        let reactors = match config.reactor_threads {
            0 => hics_outlier::parallel::available_threads().min(4),
            n => n,
        };
        let metrics = Arc::new(ServeMetrics::with_registry(registry));
        let batcher = Arc::new(Batcher::start_with_stats(
            Arc::clone(&handle),
            config.workers,
            config.max_batch,
            config.threads,
            config.batch_max_wait,
            Arc::new(BatchStats::registered(&metrics.registry)),
        ));
        // Route the scoring path's per-shard timings and index-query
        // counts into this server's registry.
        hics_outlier::install_recorder(Arc::new(EngineRecorder::new(&metrics.registry)));
        Ok(Self {
            listener,
            ctx: Ctx {
                handle,
                batcher,
                reload: Arc::new(Mutex::new(ReloadSource::default())),
                stream_stats: Arc::new(StreamStats::registered(&metrics.registry)),
                conns: Arc::new(ConnStats::registered(&metrics.registry)),
                metrics,
                config: Arc::new(config),
                reactors,
                admin: Arc::new(Mutex::new(Vec::new())),
                tracer,
            },
            stop: Arc::new(AtomicBool::new(false)),
            wakes: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Registers an extra read-only `GET` endpoint. The handler runs on
    /// the serving path (an event loop on Linux), so it must return
    /// quickly from in-memory state — no blocking I/O.
    pub fn register_admin(
        &self,
        path: impl Into<String>,
        handler: impl Fn() -> (u16, String) + Send + Sync + 'static,
    ) {
        self.ctx
            .admin
            .lock()
            .expect("admin routes")
            .push((path.into(), Arc::new(handler)));
    }

    /// Configures the default artifact source for `POST /admin/reload`:
    /// a reload request with an empty body re-loads `path` (with the given
    /// backend preference). A body naming a model overrides — and
    /// updates — this source.
    pub fn set_reload_source(&self, path: PathBuf, index: Option<IndexKind>) {
        let mut src = self.ctx.reload.lock().expect("reload source");
        src.path = Some(path);
        src.index = index;
    }

    /// The shared engine handle (e.g. to swap models from outside HTTP).
    pub fn engine_handle(&self) -> Arc<EngineHandle> {
        Arc::clone(&self.ctx.handle)
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            stop: Arc::clone(&self.stop),
            wakes: Arc::clone(&self.wakes),
            addr: self.local_addr()?,
        })
    }

    /// Runs the serving core until a [`ShutdownHandle`] fires.
    ///
    /// On Linux this spawns [`ServeConfig::reactor_threads`] epoll
    /// reactors (each with its own `SO_REUSEPORT` listener on the bound
    /// address; the kernel spreads accepts across them) and drives one on
    /// the calling thread. Connections beyond
    /// [`ServeConfig::max_connections`] are shed with `503`; scoring goes
    /// through the shared batcher.
    #[cfg(target_os = "linux")]
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut joins = Vec::new();
        for id in 1..self.ctx.reactors {
            let listener = crate::reactor::bind_reuseport(&addr)?;
            let ctx = self.ctx.clone();
            let stop = Arc::clone(&self.stop);
            let wakes = Arc::clone(&self.wakes);
            joins.push(std::thread::spawn(move || {
                crate::reactor::run_reactor(listener, ctx, stop, &wakes, id);
            }));
        }
        crate::reactor::run_reactor(
            self.listener,
            self.ctx.clone(),
            Arc::clone(&self.stop),
            &self.wakes,
            0,
        );
        for join in joins {
            let _ = join.join();
        }
        self.ctx.batcher.shutdown();
        Ok(())
    }

    /// Runs the accept loop until a [`ShutdownHandle`] fires. Each accepted
    /// connection gets a detached handler thread speaking HTTP/1.1
    /// keep-alive (bounded by `max_connections`; excess clients are shed
    /// with `503`); scoring goes through the shared batcher.
    #[cfg(not(target_os = "linux"))]
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let mut stream = match conn {
                Ok(s) => s,
                // Transient accept errors (e.g. ECONNABORTED) must not kill
                // the server — but persistent ones (EMFILE when out of fds)
                // would otherwise busy-spin the accept thread; back off.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            // Load shedding: never take on more handler threads (and their
            // fds) than configured.
            if self.ctx.conns.active.get().max(0) as usize >= self.ctx.config.max_connections {
                self.ctx.conns.shed.inc();
                let _ = write_response(
                    &mut stream,
                    503,
                    &error_body("server is at its connection limit"),
                    true,
                );
                continue;
            }
            self.ctx.conns.accepted.inc();
            self.ctx.conns.active.add(1);
            let ctx = self.ctx.clone();
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &ctx);
                ctx.conns.active.add(-1);
            });
        }
        self.ctx.batcher.shutdown();
        Ok(())
    }
}

/// A socket wrapper that charges every byte crossing it to the shared
/// per-reactor I/O counters. The blocking fallback has no reactors, so
/// the whole path reports as reactor `0` — `hics_reactor_bytes_*` on
/// `/metrics` reconciles with traffic on both serving cores.
#[cfg(not(target_os = "linux"))]
struct CountingStream {
    inner: TcpStream,
    io: Arc<crate::metrics::ReactorMetrics>,
}

#[cfg(not(target_os = "linux"))]
impl CountingStream {
    fn try_clone(&self) -> std::io::Result<Self> {
        Ok(Self {
            inner: self.inner.try_clone()?,
            io: Arc::clone(&self.io),
        })
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(t)
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_write_timeout(t)
    }
}

#[cfg(not(target_os = "linux"))]
impl std::io::Read for CountingStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = std::io::Read::read(&mut self.inner, buf)?;
        self.io.bytes_in.add(n as u64);
        Ok(n)
    }
}

#[cfg(not(target_os = "linux"))]
impl std::io::Write for CountingStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.io.bytes_out.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Serves one connection until close, timeout, error, or shutdown.
///
/// The stream is wrapped in one `BufReader` for the connection's whole
/// lifetime, so pipelined bytes the buffer over-reads are retained for the
/// next keep-alive iteration and head parsing costs no per-byte syscalls.
#[cfg(not(target_os = "linux"))]
fn handle_connection(stream: TcpStream, ctx: &Ctx) -> std::io::Result<()> {
    stream.set_read_timeout(Some(ctx.config.keep_alive))?;
    // A peer that stops *reading* must not pin the handler either: every
    // blocked response write gives up after the same idle budget.
    stream.set_write_timeout(Some(ctx.config.keep_alive))?;
    stream.set_nodelay(true)?;
    let stream = CountingStream {
        inner: stream,
        io: ctx.metrics.reactor(0),
    };
    let mut reader = std::io::BufReader::new(stream);
    let mut timeline = Timeline::new();
    loop {
        let head = match read_head(&mut reader) {
            Ok(h) => h,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return Ok(()),
            Err(RequestError::Bad { status, msg }) => {
                let _ = write_response(reader.get_mut(), status, &error_body(&msg), true);
                return Ok(());
            }
        };
        // The blocking fallback can't observe the first byte's arrival
        // (it is inside the blocking head read), so the timeline starts
        // at head completion and `head_parse` reads as ~0 here.
        if ctx.config.instrument {
            timeline.start();
            timeline.mark(Stage::HeadParse);
        }
        let close = head.close;
        if head.method == "POST" && head.path == "/v2/score" {
            // Streams report through their own counters, not the
            // request-stage histograms.
            timeline.reset();
            let keep = stream_score(&mut reader, &head, ctx)?;
            if close || !keep {
                reader.get_mut().flush()?;
                return Ok(());
            }
            continue;
        }
        let mut trace = begin_req_trace(ctx, &head, 0);
        let body = match read_sized_body(&mut reader, &head) {
            Ok(b) => b,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return Ok(()),
            Err(RequestError::Bad { status, msg }) => {
                let _ = write_response(reader.get_mut(), status, &error_body(&msg), true);
                return Ok(());
            }
        };
        timeline.mark(Stage::Body);
        let request = Request {
            method: head.method,
            path: head.path,
            body,
            close,
        };
        // Scoring runs synchronously inside `dispatch` here, so the
        // enqueue/score split the reactor core records collapses into one
        // `score` mark. The trace context is planted for the batcher to
        // capture (a remote engine parents its fan-out spans under it).
        hics_obs::trace::set_current(trace.as_ref().map(ReqTrace::context));
        let (status, body) = dispatch(&request, ctx);
        hics_obs::trace::set_current(None);
        timeline.mark(Stage::Score);
        if let Some(rt) = trace.as_mut() {
            rt.status = status;
        }
        let echo = trace
            .as_ref()
            .filter(|rt| rt.explicit)
            .map(ReqTrace::header);
        write_response_traced(
            reader.get_mut(),
            status,
            content_type_for(&request.path, status),
            &body,
            close,
            echo.as_deref(),
        )?;
        timeline.mark(Stage::Flush);
        let trace_id = trace.as_ref().map(|rt| rt.trace_id);
        if let Some(rt) = trace {
            finish_req_trace(ctx, rt, &timeline);
        }
        ctx.metrics
            .observe_request(&ctx.config, &request.path, &mut timeline, trace_id);
        if close {
            reader.get_mut().flush()?;
            return Ok(());
        }
    }
}

/// Routes one non-streaming request to its endpoint.
pub(crate) fn dispatch(request: &Request, ctx: &Ctx) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/score") => {
            let engine = ctx.handle.load();
            score_endpoint(&request.body, &engine, &ctx.batcher)
        }
        ("POST", "/admin/reload") => reload_endpoint(&request.body, ctx),
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".to_string()),
        ("GET", "/model") => (200, model_body(&ctx.handle.load(), ctx.handle.generation())),
        ("GET", "/stats") => (200, stats_body(ctx)),
        ("GET", "/metrics") => (200, ctx.metrics.registry.render_prometheus()),
        ("GET", "/trace") => (200, ctx.tracer.index_json()),
        ("GET", path) if path.starts_with("/trace/") => {
            match hics_obs::trace::parse_id(&path["/trace/".len()..]) {
                None => (400, error_body("trace id must be 1-16 hex digits")),
                Some(id) => match ctx.tracer.trace_json(id) {
                    Some(body) => (200, body),
                    None => (404, error_body("trace not retained (dropped or evicted)")),
                },
            }
        }
        ("POST" | "GET", _) => {
            if request.method == "GET" {
                let handler = ctx
                    .admin
                    .lock()
                    .expect("admin routes")
                    .iter()
                    .find(|(p, _)| *p == request.path)
                    .map(|(_, h)| Arc::clone(h));
                if let Some(handler) = handler {
                    return handler();
                }
            }
            (404, error_body(&format!("no route {}", request.path)))
        }
        _ => (
            405,
            error_body(&format!("method {} not allowed", request.method)),
        ),
    }
}

/// Root-span bookkeeping for one in-flight request: opened at head parse,
/// finished (and submitted to tail retention) when the response flushes.
pub(crate) struct ReqTrace {
    pub(crate) trace_id: u64,
    pub(crate) span_id: u64,
    /// Upstream parent span id, when the client propagated one.
    pub(crate) parent: Option<u64>,
    /// Root-span start on the tracer's clock.
    pub(crate) start_ns: u64,
    pub(crate) path: String,
    /// Response status, recorded when the response is rendered.
    pub(crate) status: u16,
    /// Whether the client sent `x-hics-trace` — the response echoes the
    /// header and the completed trace is always retained.
    pub(crate) explicit: bool,
}

impl ReqTrace {
    /// The `x-hics-trace` value echoed to explicit callers.
    pub(crate) fn header(&self) -> String {
        hics_obs::trace::format_header(self.trace_id, self.span_id)
    }

    /// The context downstream layers (batcher → remote router) parent
    /// their spans under.
    pub(crate) fn context(&self) -> hics_obs::TraceContext {
        hics_obs::TraceContext {
            trace_id: self.trace_id,
            parent_span: self.span_id,
        }
    }
}

/// Opens the root span of one request (`None` with instrumentation off).
/// `elapsed_ns` back-dates the start to first-byte arrival — the head has
/// already been parsed by the time the trace can be created.
pub(crate) fn begin_req_trace(ctx: &Ctx, head: &RequestHead, elapsed_ns: u64) -> Option<ReqTrace> {
    if !ctx.config.instrument {
        return None;
    }
    let (trace_id, parent, explicit) = match head.trace {
        Some((tid, sid)) => (tid, Some(sid), true),
        None => (ctx.tracer.next_id(), None, false),
    };
    Some(ReqTrace {
        trace_id,
        span_id: ctx.tracer.next_id(),
        parent,
        start_ns: ctx.tracer.now_ns().saturating_sub(elapsed_ns),
        path: head.path.clone(),
        status: 200,
        explicit,
    })
}

/// Closes one request's trace: each marked timeline stage becomes a child
/// span bracketed by the previous mark, then the root span closes and the
/// tracer applies tail-based retention. Must run *before* the timeline is
/// folded into the histograms (which resets it).
pub(crate) fn finish_req_trace(ctx: &Ctx, rt: ReqTrace, timeline: &Timeline) {
    let tracer = &ctx.tracer;
    let mut prev_off = 0u64;
    for (stage, name) in STAGES {
        if let Some(off) = timeline.offset_ns(stage) {
            tracer.record(Span {
                trace_id: rt.trace_id,
                span_id: tracer.next_id(),
                parent: Some(rt.span_id),
                name: name.to_string(),
                start_ns: rt.start_ns + prev_off,
                end_ns: rt.start_ns + off,
                tags: Vec::new(),
                status: SpanStatus::Ok,
            });
            prev_off = off;
        }
    }
    let mut root = Span {
        trace_id: rt.trace_id,
        span_id: rt.span_id,
        parent: rt.parent,
        name: format!("req {}", rt.path),
        start_ns: rt.start_ns,
        end_ns: tracer.now_ns(),
        tags: Vec::new(),
        status: if rt.status >= 500 {
            SpanStatus::Error
        } else {
            SpanStatus::Ok
        },
    };
    root.tag("path", rt.path.as_str());
    root.tag("status", rt.status.to_string());
    tracer.finish_trace(root, rt.explicit);
}

/// Parsed `/score` rows plus whether the single-point form was used;
/// failures are `(status, rendered_body)` ready to send.
pub(crate) type ScoreRequest = Result<(Vec<Vec<f64>>, bool), (u16, String)>;

/// Parses and validates a `POST /score` body against model arity `d`.
pub(crate) fn parse_score_request(body: &[u8], d: usize) -> ScoreRequest {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return Err((400, error_body("body is not UTF-8"))),
    };
    let doc = match json::parse(text) {
        Ok(d) => d,
        Err(e) => return Err((400, error_body(&e.to_string()))),
    };
    // Accept {"points": [[...], ...]} (batch) or {"point": [...]} (single).
    if let Some(point) = doc.get("point") {
        match parse_row(point, d) {
            Ok(row) => Ok((vec![row], true)),
            Err(msg) => Err((400, error_body(&msg))),
        }
    } else if let Some(points) = doc.get("points") {
        let Some(arr) = points.as_array() else {
            return Err((400, error_body("\"points\" must be an array of rows")));
        };
        if arr.is_empty() {
            return Err((400, error_body("\"points\" is empty")));
        }
        let mut rows = Vec::with_capacity(arr.len());
        for (i, p) in arr.iter().enumerate() {
            match parse_row(p, d) {
                Ok(row) => rows.push(row),
                Err(msg) => return Err((400, error_body(&format!("row {i}: {msg}")))),
            }
        }
        Ok((rows, false))
    } else {
        Err((400, error_body("body must contain \"point\" or \"points\"")))
    }
}

/// Renders a batch completion into the `/score` response. A degraded
/// (partial) remote fold appends `"partial":true`; full responses stay
/// byte-identical to what they were before partial folds existed. A row
/// the upstream tier could not score at all answers `502` — it is a
/// backend failure, not a client error.
pub(crate) fn format_score_reply(reply: BatchReply, single: bool) -> (u16, String) {
    let Some(batch) = reply else {
        return (503, error_body("server is shutting down"));
    };
    let mut scores = Vec::with_capacity(batch.results.len());
    for (i, r) in batch.results.into_iter().enumerate() {
        match r {
            Ok(s) => scores.push(s),
            Err(e @ hics_outlier::QueryError::Upstream(_)) => {
                return (502, error_body(&format!("row {i}: {e}")))
            }
            Err(e) => return (400, error_body(&format!("row {i}: {e}"))),
        }
    }
    let mut out = String::with_capacity(16 + scores.len() * 20);
    if single {
        out.push_str("{\"score\":");
        json::write_f64(&mut out, scores[0]);
    } else {
        out.push_str("{\"scores\":[");
        for (i, s) in scores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_f64(&mut out, *s);
        }
        out.push(']');
    }
    if batch.partial {
        out.push_str(",\"partial\":true");
    }
    out.push('}');
    (200, out)
}

/// `POST /score`: parse, validate, batch-score, respond.
fn score_endpoint(body: &[u8], engine: &Engine, batcher: &Batcher) -> (u16, String) {
    match parse_score_request(body, engine.d()) {
        Ok((rows, single)) => format_score_reply(batcher.score(rows), single),
        Err(reply) => reply,
    }
}

/// `POST /admin/reload`: load a new artifact (zero-copy mmap), build and
/// validate its engine, and swap it into the shared handle. In-flight and
/// keep-alive connections are untouched — they finish against whichever
/// engine they already resolved and pick up the new one on their next
/// request (or next batch). On the reactor core this always runs on a
/// short-lived thread, never on an event loop.
pub(crate) fn reload_endpoint(body: &[u8], ctx: &Ctx) -> (u16, String) {
    // Parse the optional body: {"model": "...", "index": "brute"|"vptree"}.
    let mut path_override: Option<PathBuf> = None;
    let mut index_override: Option<IndexKind> = None;
    let trimmed: &[u8] = {
        let mut t = body;
        while let [rest @ .., last] = t {
            if last.is_ascii_whitespace() {
                t = rest;
            } else {
                break;
            }
        }
        t
    };
    if !trimmed.is_empty() {
        let text = match std::str::from_utf8(trimmed) {
            Ok(t) => t,
            Err(_) => return (400, error_body("body is not UTF-8")),
        };
        let doc = match json::parse(text) {
            Ok(d) => d,
            Err(e) => return (400, error_body(&e.to_string())),
        };
        if let Some(m) = doc.get("model") {
            match m.as_str() {
                Some(p) => path_override = Some(PathBuf::from(p)),
                None => return (400, error_body("\"model\" must be a path string")),
            }
        }
        if let Some(ix) = doc.get("index") {
            let Some(name) = ix.as_str() else {
                return (400, error_body("\"index\" must be \"brute\" or \"vptree\""));
            };
            match name.parse::<IndexKind>() {
                Ok(kind) => index_override = Some(kind),
                Err(e) => return (400, error_body(&e)),
            }
        }
    }

    // Hold the source lock across load + swap: concurrent reloads are
    // serialised (scoring traffic is *not* blocked — it reads the handle,
    // not this lock).
    let mut source = ctx.reload.lock().expect("reload source");
    let Some(path) = path_override.or_else(|| source.path.clone()) else {
        return (
            400,
            error_body("no reload source configured; pass {\"model\": \"path\"}"),
        );
    };
    let index = index_override.or(source.index);
    let start = Instant::now();
    // `Engine::open_mmap` sniffs the format version, so a sharded manifest
    // can be hot-swapped in over a single model (and vice versa).
    let engine = match Engine::open_mmap(&path, index, ctx.config.threads) {
        Ok(e) => e,
        Err(e) => {
            return (
                422,
                error_body(&format!("reloading {}: {e}", path.display())),
            )
        }
    };
    let (n, d, subs) = (engine.n(), engine.d(), engine.subspace_count());
    let shards = engine.shard_count();
    let idx = engine.index_stats();
    let mapped = engine.is_mapped();
    ctx.handle.swap(engine);
    source.path = Some(path);
    source.index = index;
    let micros = start.elapsed().as_micros() as u64;
    (
        200,
        format!(
            "{{\"status\":\"reloaded\",\"generation\":{},\"objects\":{n},\"attributes\":{d},\
             \"subspaces\":{subs},\"shards\":{shards},\"mmap\":{mapped},\
             \"load_micros\":{micros},\
             \"index\":{{\"kind\":\"{}\",\"nodes\":{},\"from_artifact\":{}}}}}",
            ctx.handle.generation(),
            idx.kind.name(),
            idx.nodes,
            idx.from_artifact,
        ),
    )
}

/// One formatted NDJSON output line (with trailing newline). The score
/// carries the degraded-fold flag; `"partial":true` is appended only when
/// set, so non-degraded lines are byte-identical to the original format.
pub(crate) fn stream_line(
    result: Result<(f64, bool), String>,
    line: u64,
    stats: &StreamStats,
) -> String {
    match result {
        Ok((score, partial)) => {
            stats.lines.inc();
            let mut out = String::with_capacity(24);
            out.push_str("{\"score\":");
            json::write_f64(&mut out, score);
            if partial {
                out.push_str(",\"partial\":true");
            }
            out.push_str("}\n");
            out
        }
        Err(msg) => {
            stats.errors.inc();
            let mut out = String::with_capacity(msg.len() + 24);
            out.push_str("{\"line\":");
            out.push_str(&line.to_string());
            out.push_str(",\"error\":");
            json::escape_string(&mut out, &msg);
            out.push_str("}\n");
            out
        }
    }
}

/// Parses one NDJSON line into a row of arity `d`: a bare `[f64; d]` row
/// or `{"point": [f64; d]}`.
pub(crate) fn parse_stream_row(raw: &[u8], d: usize) -> Result<Vec<f64>, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "line is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let value = doc.get("point").unwrap_or(&doc);
    parse_row(value, d)
}

/// Parses and scores one NDJSON line. The engine is resolved **per
/// line**, so a hot reload mid-stream takes effect on the very next line
/// without disturbing the connection. Returns the score plus the remote
/// degraded-fold flag.
pub(crate) fn score_stream_line(raw: &[u8], ctx: &Ctx) -> Result<(f64, bool), String> {
    let engine = ctx.handle.load();
    let row = parse_stream_row(raw, engine.d())?;
    match engine.score_partial(&row) {
        (Ok(score), partial) => Ok((score, partial)),
        (Err(e), _) => Err(e.to_string()),
    }
}

/// `POST /v2/score`: the streaming NDJSON scoring loop. Returns whether the
/// connection may be kept alive (body fully consumed, no protocol damage).
#[cfg(not(target_os = "linux"))]
fn stream_score(
    reader: &mut std::io::BufReader<CountingStream>,
    head: &RequestHead,
    ctx: &Ctx,
) -> std::io::Result<bool> {
    ctx.stream_stats.streams.inc();
    // Responses interleave with body reads, so the write side works on a
    // dup of the socket while the BufReader keeps the read side.
    let mut writer = std::io::BufWriter::new(reader.get_ref().try_clone()?);
    // Inside a stream the tighter idle timeout applies — on both
    // directions: a client that goes silent, or one that stops reading its
    // scores until our send buffer fills, is cut off after `stream_idle`,
    // not `keep_alive`.
    reader
        .get_ref()
        .set_read_timeout(Some(ctx.config.stream_idle))?;
    reader
        .get_ref()
        .set_write_timeout(Some(ctx.config.stream_idle))?;
    write_chunked_head(&mut writer, 200, "application/x-ndjson", head.close)?;

    // The byte budget lives inside the reader, charged per consumed byte —
    // a body with no newlines at all still hits it.
    let mut body = BodyReader::new(reader, head, ctx.config.max_stream_bytes);
    let mut buf: Vec<u8> = Vec::new();
    let mut line_no = 0u64;
    let mut keep = true;
    loop {
        match body.read_line(&mut buf, ctx.config.max_line_bytes) {
            Ok(status @ (LineRead::Line | LineRead::End)) => {
                let done = status == LineRead::End;
                if !buf.iter().all(u8::is_ascii_whitespace) {
                    line_no += 1;
                    let out = stream_line(score_stream_line(&buf, ctx), line_no, &ctx.stream_stats);
                    write_chunk(&mut writer, out.as_bytes())?;
                }
                if done {
                    break;
                }
            }
            Ok(LineRead::TooLong) => {
                line_no += 1;
                let msg = format!(
                    "line exceeds {} bytes and was discarded",
                    ctx.config.max_line_bytes
                );
                let out = stream_line(Err(msg), line_no, &ctx.stream_stats);
                write_chunk(&mut writer, out.as_bytes())?;
            }
            Err(BodyError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let msg = format!(
                    "stream idle for more than {:?}; closing",
                    ctx.config.stream_idle
                );
                let out = stream_line(Err(msg), line_no, &ctx.stream_stats);
                let _ = write_chunk(&mut writer, out.as_bytes());
                keep = false;
                break;
            }
            Err(BodyError::Io(e)) => return Err(e),
            Err(e @ (BodyError::Protocol(_) | BodyError::TooLarge { .. })) => {
                // Broken framing or a blown byte budget; report and drop
                // the connection (it cannot be resynchronised / trusted).
                let out = stream_line(Err(e.to_string()), line_no, &ctx.stream_stats);
                let _ = write_chunk(&mut writer, out.as_bytes());
                keep = false;
                break;
            }
        }
    }
    finish_chunked(&mut writer)?;
    let finished = body.finished();
    reader
        .get_ref()
        .set_read_timeout(Some(ctx.config.keep_alive))?;
    reader
        .get_ref()
        .set_write_timeout(Some(ctx.config.keep_alive))?;
    Ok(keep && finished)
}

/// Extracts one numeric row of the model's arity.
fn parse_row(v: &Json, d: usize) -> Result<Vec<f64>, String> {
    let Some(arr) = v.as_array() else {
        return Err("row must be an array of numbers".into());
    };
    if arr.len() != d {
        return Err(format!("row has {} values, model expects {d}", arr.len()));
    }
    arr.iter()
        .enumerate()
        .map(|(j, x)| {
            x.as_f64()
                .ok_or_else(|| format!("value {j} is not a number"))
        })
        .collect()
}

/// The `"index"` object shared by `/model` and `/stats`: which neighbour
/// backend serves queries, where it came from, and what building it cost.
fn index_object(engine: &Engine) -> String {
    let idx = engine.index_stats();
    format!(
        "{{\"kind\":\"{}\",\"nodes\":{},\"from_artifact\":{},\"build_micros\":{}}}",
        idx.kind.name(),
        idx.nodes,
        idx.from_artifact,
        idx.build_micros,
    )
}

/// `GET /model` body.
fn model_body(engine: &Engine, generation: u64) -> String {
    format!(
        "{{\"objects\":{},\"attributes\":{},\"subspaces\":{},\"shards\":{},\
         \"generation\":{generation},\"mmap\":{},\"index\":{}}}",
        engine.n(),
        engine.d(),
        engine.subspace_count(),
        engine.shard_count(),
        engine.is_mapped(),
        index_object(engine),
    )
}

/// `GET /stats` body.
fn stats_body(ctx: &Ctx) -> String {
    let s = ctx.batcher.stats();
    let st = &ctx.stream_stats;
    let cn = &ctx.conns;
    let engine = ctx.handle.load();
    let retired: Vec<String> = ctx
        .handle
        .retired_generations()
        .iter()
        .map(u64::to_string)
        .collect();
    let batch_sizes: Vec<String> = s.batch_size_snapshot().iter().map(u64::to_string).collect();
    format!(
        "{{\"requests\":{},\"rows\":{},\"batches\":{},\"coalesced_batches\":{},\
         \"streams\":{{\"opened\":{},\"lines\":{},\"errors\":{}}},\
         \"generation\":{},\"shards\":{},\"retired_generations\":[{}],\"index\":{},\
         \"connections\":{{\"accepted\":{},\"active\":{},\"shed\":{}}},\
         \"reactors\":{},\"batch_sizes\":[{}]}}",
        s.requests.get(),
        s.rows.get(),
        s.batches.get(),
        s.coalesced_batches.get(),
        st.streams.get(),
        st.lines.get(),
        st.errors.get(),
        ctx.handle.generation(),
        engine.shard_count(),
        retired.join(","),
        index_object(&engine),
        cn.accepted.get(),
        cn.active.get(),
        cn.shed.get(),
        ctx.reactors,
        batch_sizes.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hics_data::model::{
        apply_normalization, AggregationKind, HicsModel, ModelSubspace, NormKind, ScorerKind,
        ScorerSpec,
    };
    use hics_data::SyntheticConfig;
    use hics_outlier::QueryEngine;

    fn engine() -> QueryEngine {
        let g = SyntheticConfig::new(60, 3).with_seed(2).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
        let model = HicsModel::new(
            data,
            NormKind::None,
            norm,
            vec![ModelSubspace {
                dims: vec![0, 2],
                contrast: 0.6,
            }],
            ScorerSpec {
                kind: ScorerKind::KnnMean,
                k: 4,
            },
            AggregationKind::Average,
        );
        QueryEngine::from_model(&model, 1)
    }

    fn test_ctx(engine: QueryEngine) -> Ctx {
        let handle = Arc::new(EngineHandle::new(engine));
        let metrics = Arc::new(ServeMetrics::new());
        let batcher = Arc::new(Batcher::start_with_stats(
            Arc::clone(&handle),
            1,
            16,
            1,
            Duration::ZERO,
            Arc::new(BatchStats::registered(&metrics.registry)),
        ));
        Ctx {
            handle,
            batcher,
            reload: Arc::new(Mutex::new(ReloadSource::default())),
            stream_stats: Arc::new(StreamStats::registered(&metrics.registry)),
            conns: Arc::new(ConnStats::registered(&metrics.registry)),
            metrics,
            config: Arc::new(ServeConfig::default()),
            reactors: 1,
            admin: Arc::new(Mutex::new(Vec::new())),
            tracer: Arc::new(Tracer::default()),
        }
    }

    fn with_ctx<F: FnOnce(&Ctx)>(f: F) {
        let ctx = test_ctx(engine());
        f(&ctx);
        ctx.batcher.shutdown();
    }

    /// A sharded manifest flows through the same dispatch/reload machinery
    /// as a single model: `/model` and `/stats` report the shard count,
    /// `/score` answers with the ensemble score, and a reload onto the
    /// manifest swaps it in under the running batcher.
    #[test]
    fn sharded_manifest_serves_and_hot_reloads() {
        use hics_data::manifest::{PartitionKind, ShardAggregation, ShardEntry, ShardManifest};
        let dir = std::env::temp_dir().join("hics-serve-sharded-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut entries = Vec::new();
        let mut shard_engines = Vec::new();
        for (k, seed) in [4u64, 5].iter().enumerate() {
            let g = SyntheticConfig::new(60, 3).with_seed(*seed).generate();
            let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
            let model = HicsModel::new(
                data,
                NormKind::None,
                norm,
                vec![ModelSubspace {
                    dims: vec![0, 1],
                    contrast: 0.6,
                }],
                ScorerSpec {
                    kind: ScorerKind::KnnMean,
                    k: 4,
                },
                AggregationKind::Average,
            );
            let file = format!("serve.shard{k}.hics");
            model.save(&dir.join(&file)).unwrap();
            shard_engines.push(QueryEngine::from_model(&model, 1));
            entries.push(ShardEntry {
                file,
                n: model.n() as u64,
            });
        }
        let manifest = ShardManifest {
            total_n: 120,
            d: 3,
            aggregation: ShardAggregation::Mean,
            partition: PartitionKind::Contiguous,
            shards: entries,
        };
        let manifest_path = dir.join("serve.hics");
        manifest.save(&manifest_path).unwrap();

        with_ctx(|ctx| {
            // Hot-reload the running (single-model) server onto the
            // manifest.
            let body = format!("{{\"model\": \"{}\"}}", manifest_path.display());
            let (status, reply) = reload_endpoint(body.as_bytes(), ctx);
            assert_eq!(status, 200, "{reply}");
            assert!(reply.contains("\"shards\":2"), "{reply}");
            assert!(reply.contains("\"objects\":120"), "{reply}");

            let engine = ctx.handle.load();
            assert_eq!(engine.shard_count(), 2);
            let body = model_body(&engine, ctx.handle.generation());
            assert!(body.contains("\"shards\":2"), "{body}");
            let stats = stats_body(ctx);
            assert!(stats.contains("\"shards\":2"), "{stats}");
            assert!(
                stats.contains("\"retired_generations\":[1]"),
                "the displaced single-model engine is retired: {stats}"
            );

            // `/score` now answers the ensemble mean, through the batcher.
            let q = [0.3, 0.6, 0.9];
            let (status, body) =
                score_endpoint(br#"{"point": [0.3, 0.6, 0.9]}"#, &engine, &ctx.batcher);
            assert_eq!(status, 200, "{body}");
            let got = json::parse(&body)
                .unwrap()
                .get("score")
                .unwrap()
                .as_f64()
                .unwrap();
            let want = shard_engines
                .iter()
                .map(|e| e.score(&q).unwrap())
                .sum::<f64>()
                / 2.0;
            assert_eq!(got, want);
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vptree_engine_reports_index_and_scores_identically() {
        let g = SyntheticConfig::new(90, 3).with_seed(6).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
        let model = HicsModel::new(
            data,
            NormKind::None,
            norm,
            vec![ModelSubspace {
                dims: vec![0, 1],
                contrast: 0.7,
            }],
            ScorerSpec {
                kind: ScorerKind::Lof,
                k: 5,
            },
            AggregationKind::Average,
        );
        let brute = QueryEngine::from_model(&model, 1);
        let vp = Engine::from(QueryEngine::from_model_with_index(
            &model,
            Some(hics_outlier::IndexKind::VpTree),
            1,
        ));
        let body = model_body(&vp, 1);
        assert!(body.contains("\"index\":{\"kind\":\"vptree\""), "{body}");
        assert!(!body.contains("\"nodes\":0"), "{body}");
        for i in (0..90).step_by(9) {
            let row = g.dataset.row(i);
            assert_eq!(brute.score(&row), vp.score(&row), "row {i}");
        }
    }

    #[test]
    fn score_endpoint_single_and_batch() {
        with_ctx(|ctx| {
            let engine = ctx.handle.load();
            let (status, body) =
                score_endpoint(br#"{"point": [0.5, 0.5, 0.5]}"#, &engine, &ctx.batcher);
            assert_eq!(status, 200, "{body}");
            let score = json::parse(&body)
                .unwrap()
                .get("score")
                .unwrap()
                .as_f64()
                .unwrap();
            assert_eq!(score, engine.score(&[0.5, 0.5, 0.5]).unwrap());

            let (status, body) = score_endpoint(
                br#"{"points": [[0.5, 0.5, 0.5], [0.1, 0.9, 0.2]]}"#,
                &engine,
                &ctx.batcher,
            );
            assert_eq!(status, 200, "{body}");
            let doc = json::parse(&body).unwrap();
            let scores = doc.get("scores").unwrap().as_array().unwrap();
            assert_eq!(scores.len(), 2);
            assert_eq!(
                scores[1].as_f64().unwrap(),
                engine.score(&[0.1, 0.9, 0.2]).unwrap()
            );
        });
    }

    #[test]
    fn score_endpoint_rejects_bad_bodies() {
        with_ctx(|ctx| {
            let engine = ctx.handle.load();
            for (body, fragment) in [
                (&b"not json"[..], "JSON error"),
                (br#"{"nope": 1}"#, "\\\"point\\\" or \\\"points\\\""),
                (br#"{"points": []}"#, "empty"),
                (br#"{"points": [[1, 2]]}"#, "model expects 3"),
                (br#"{"point": [1, 2, "x"]}"#, "not a number"),
                (br#"{"points": 5}"#, "must be an array"),
            ] {
                let (status, msg) = score_endpoint(body, &engine, &ctx.batcher);
                assert_eq!(status, 400, "{msg}");
                assert!(msg.contains(fragment), "{msg} missing {fragment}");
            }
        });
    }

    #[test]
    fn dispatch_routes_and_404s() {
        with_ctx(|ctx| {
            let get = |path: &str| Request {
                method: "GET".into(),
                path: path.into(),
                body: Vec::new(),
                close: false,
                trace: None,
            };
            assert_eq!(dispatch(&get("/healthz"), ctx).0, 200);
            let (status, body) = dispatch(&get("/model"), ctx);
            assert_eq!(status, 200);
            assert!(body.contains("\"attributes\":3"), "{body}");
            assert!(body.contains("\"generation\":1"), "{body}");
            assert!(body.contains("\"index\":{\"kind\":\"brute\""), "{body}");
            let (status, body) = dispatch(&get("/stats"), ctx);
            assert_eq!(status, 200);
            assert!(body.contains("\"index\":{\"kind\":\"brute\""), "{body}");
            assert!(body.contains("\"streams\":{"), "{body}");
            assert!(body.contains("\"connections\":{"), "{body}");
            assert!(body.contains("\"reactors\":1"), "{body}");
            assert!(body.contains("\"batch_sizes\":["), "{body}");
            let (status, body) = dispatch(&get("/metrics"), ctx);
            assert_eq!(status, 200);
            assert!(
                body.contains("# TYPE hics_requests_total counter"),
                "{body}"
            );
            assert!(body.contains("# TYPE hics_batch_size summary"), "{body}");
            assert!(body.contains("hics_connections_active 0"), "{body}");
            assert_eq!(dispatch(&get("/nope"), ctx).0, 404);
            // Embedder-registered admin routes answer GETs past the
            // built-ins — and only GETs.
            ctx.admin.lock().unwrap().push((
                "/route".into(),
                Arc::new(|| (200, "{\"shards\":[]}".to_string())),
            ));
            let (status, body) = dispatch(&get("/route"), ctx);
            assert_eq!(status, 200);
            assert_eq!(body, "{\"shards\":[]}");
            let post_route = Request {
                method: "POST".into(),
                path: "/route".into(),
                body: Vec::new(),
                close: false,
                trace: None,
            };
            assert_eq!(dispatch(&post_route, ctx).0, 404);
            let delete = Request {
                method: "DELETE".into(),
                path: "/score".into(),
                body: Vec::new(),
                close: false,
                trace: None,
            };
            assert_eq!(dispatch(&delete, ctx).0, 405);
        });
    }

    #[test]
    fn reload_without_source_or_with_bad_body_is_4xx() {
        with_ctx(|ctx| {
            let (status, body) = reload_endpoint(b"", ctx);
            assert_eq!(status, 400, "{body}");
            assert!(body.contains("no reload source"), "{body}");

            let (status, _) = reload_endpoint(b"{\"model\": 7}", ctx);
            assert_eq!(status, 400);

            let (status, body) = reload_endpoint(br#"{"model": "/no/such/artifact.hics"}"#, ctx);
            assert_eq!(status, 422, "{body}");
            assert_eq!(ctx.handle.generation(), 1, "failed reload must not swap");
        });
    }

    #[test]
    fn reload_swaps_in_a_new_model_and_bumps_generation() {
        with_ctx(|ctx| {
            let g = SyntheticConfig::new(70, 3).with_seed(8).generate();
            let (data, norm) = apply_normalization(&g.dataset, NormKind::MinMax);
            let model = HicsModel::new(
                data,
                NormKind::MinMax,
                norm,
                vec![ModelSubspace {
                    dims: vec![0, 1],
                    contrast: 0.9,
                }],
                ScorerSpec {
                    kind: ScorerKind::Lof,
                    k: 6,
                },
                AggregationKind::Average,
            );
            let dir = std::env::temp_dir().join("hics-serve-reload-test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("second.hics");
            model.save(&path).unwrap();

            let before = ctx.handle.load();
            let body = format!("{{\"model\": \"{}\"}}", path.display());
            let (status, reply) = reload_endpoint(body.as_bytes(), ctx);
            assert_eq!(status, 200, "{reply}");
            assert!(reply.contains("\"status\":\"reloaded\""), "{reply}");
            assert!(reply.contains("\"generation\":2"), "{reply}");
            assert!(reply.contains("\"objects\":70"), "{reply}");
            let after = ctx.handle.load();
            assert!(!Arc::ptr_eq(&before, &after));
            assert!(after.is_mapped(), "reload serves the artifact zero-copy");
            // The reloaded engine matches a freshly built reference.
            let reference = QueryEngine::from_model(&model, 1);
            let q = vec![0.25, 0.5, 0.75];
            assert_eq!(after.score(&q), reference.score(&q));
            // An empty body now re-loads the remembered source.
            let (status, reply) = reload_endpoint(b"", ctx);
            assert_eq!(status, 200, "{reply}");
            assert!(reply.contains("\"generation\":3"), "{reply}");
            std::fs::remove_file(&path).ok();
        });
    }
}
