//! The multi-threaded scoring server: `std::net::TcpListener` accept loop,
//! one handler thread per connection (HTTP/1.1 keep-alive), all scoring
//! funnelled through the cross-connection [`Batcher`].
//!
//! Endpoints:
//!
//! | method, path | behaviour |
//! |---|---|
//! | `POST /score` | body `{"points": [[f64; d], …]}` → `{"scores": […]}`, or `{"point": [f64; d]}` → `{"score": s}` |
//! | `GET /healthz` | `{"status":"ok"}` liveness probe |
//! | `GET /model` | model shape + neighbour-index kind and build stats |
//! | `GET /stats` | request/row/batch counters + neighbour-index stats |
//!
//! Per-row failures (wrong arity, non-finite values) fail the whole request
//! with `400` and a row-indexed message — callers batch their own rows, so
//! partial success would be ambiguous.

use crate::batch::Batcher;
use crate::http::{error_body, read_request, write_response, Request, RequestError};
use crate::json::{self, Json};
use hics_outlier::QueryEngine;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port `0` picks a free port).
    pub addr: String,
    /// Scoring threads per batch (defaults to available parallelism).
    pub threads: usize,
    /// Maximum rows coalesced into one batch.
    pub max_batch: usize,
    /// Batch worker count (batches scored concurrently).
    pub workers: usize,
    /// Idle keep-alive timeout per connection.
    pub keep_alive: Duration,
    /// Maximum concurrent connections; further clients get an immediate
    /// `503` instead of a handler thread (keeps the thread count and fd
    /// usage bounded under overload).
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            threads: hics_outlier::parallel::available_threads(),
            max_batch: 512,
            workers: 1,
            keep_alive: Duration::from_secs(30),
            max_connections: 1024,
        }
    }
}

/// A running scoring server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    batcher: Arc<Batcher>,
    config: ServeConfig,
    stop: Arc<AtomicBool>,
}

/// Handle to stop a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// Asks the accept loop to exit. Safe to call more than once.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the (blocking) accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds the listen socket and starts the batch workers (the accept
    /// loop does not run until [`Server::run`]).
    pub fn bind(engine: QueryEngine, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let engine = Arc::new(engine);
        let batcher = Arc::new(Batcher::start(
            Arc::clone(&engine),
            config.workers,
            config.max_batch,
            config.threads,
        ));
        Ok(Self {
            listener,
            engine,
            batcher,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr()?,
        })
    }

    /// Runs the accept loop until a [`ShutdownHandle`] fires. Each accepted
    /// connection gets a detached handler thread speaking HTTP/1.1
    /// keep-alive (bounded by `max_connections`; excess clients are shed
    /// with `503`); scoring goes through the shared batcher.
    pub fn run(self) -> std::io::Result<()> {
        let active = Arc::new(AtomicUsize::new(0));
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let mut stream = match conn {
                Ok(s) => s,
                // Transient accept errors (e.g. ECONNABORTED) must not kill
                // the server — but persistent ones (EMFILE when out of fds)
                // would otherwise busy-spin the accept thread; back off.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            // Load shedding: never take on more handler threads (and their
            // fds) than configured.
            if active.load(Ordering::SeqCst) >= self.config.max_connections {
                let _ = write_response(
                    &mut stream,
                    503,
                    &error_body("server is at its connection limit"),
                    true,
                );
                continue;
            }
            active.fetch_add(1, Ordering::SeqCst);
            let engine = Arc::clone(&self.engine);
            let batcher = Arc::clone(&self.batcher);
            let active = Arc::clone(&active);
            let keep_alive = self.config.keep_alive;
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &engine, &batcher, keep_alive);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        self.batcher.shutdown();
        Ok(())
    }
}

/// Serves one connection until close, timeout, error, or shutdown.
///
/// The stream is wrapped in one `BufReader` for the connection's whole
/// lifetime, so pipelined bytes the buffer over-reads are retained for the
/// next keep-alive iteration and head parsing costs no per-byte syscalls.
fn handle_connection(
    stream: TcpStream,
    engine: &QueryEngine,
    batcher: &Batcher,
    keep_alive: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(keep_alive))?;
    stream.set_nodelay(true)?;
    let mut reader = std::io::BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return Ok(()),
            Err(RequestError::Bad { status, msg }) => {
                let _ = write_response(reader.get_mut(), status, &error_body(&msg), true);
                return Ok(());
            }
        };
        let close = request.close;
        let (status, body) = dispatch(&request, engine, batcher);
        write_response(reader.get_mut(), status, &body, close)?;
        if close {
            reader.get_mut().flush()?;
            return Ok(());
        }
    }
}

/// Routes one request to its endpoint.
fn dispatch(request: &Request, engine: &QueryEngine, batcher: &Batcher) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/score") => score_endpoint(&request.body, engine, batcher),
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".to_string()),
        ("GET", "/model") => (200, model_body(engine)),
        ("GET", "/stats") => (200, stats_body(engine, batcher)),
        ("POST" | "GET", _) => (404, error_body(&format!("no route {}", request.path))),
        _ => (
            405,
            error_body(&format!("method {} not allowed", request.method)),
        ),
    }
}

/// `POST /score`: parse, validate, batch-score, respond.
fn score_endpoint(body: &[u8], engine: &QueryEngine, batcher: &Batcher) -> (u16, String) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8")),
    };
    let doc = match json::parse(text) {
        Ok(d) => d,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    // Accept {"points": [[...], ...]} (batch) or {"point": [...]} (single).
    let (rows, single) = if let Some(point) = doc.get("point") {
        match parse_row(point, engine.d()) {
            Ok(row) => (vec![row], true),
            Err(msg) => return (400, error_body(&msg)),
        }
    } else if let Some(points) = doc.get("points") {
        let Some(arr) = points.as_array() else {
            return (400, error_body("\"points\" must be an array of rows"));
        };
        if arr.is_empty() {
            return (400, error_body("\"points\" is empty"));
        }
        let mut rows = Vec::with_capacity(arr.len());
        for (i, p) in arr.iter().enumerate() {
            match parse_row(p, engine.d()) {
                Ok(row) => rows.push(row),
                Err(msg) => return (400, error_body(&format!("row {i}: {msg}"))),
            }
        }
        (rows, false)
    } else {
        return (400, error_body("body must contain \"point\" or \"points\""));
    };

    let Some(results) = batcher.score(rows) else {
        return (503, error_body("server is shutting down"));
    };
    let mut scores = Vec::with_capacity(results.len());
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(s) => scores.push(s),
            Err(e) => return (400, error_body(&format!("row {i}: {e}"))),
        }
    }

    let mut out = String::with_capacity(16 + scores.len() * 20);
    if single {
        out.push_str("{\"score\":");
        json::write_f64(&mut out, scores[0]);
        out.push('}');
    } else {
        out.push_str("{\"scores\":[");
        for (i, s) in scores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_f64(&mut out, *s);
        }
        out.push_str("]}");
    }
    (200, out)
}

/// Extracts one numeric row of the model's arity.
fn parse_row(v: &Json, d: usize) -> Result<Vec<f64>, String> {
    let Some(arr) = v.as_array() else {
        return Err("row must be an array of numbers".into());
    };
    if arr.len() != d {
        return Err(format!("row has {} values, model expects {d}", arr.len()));
    }
    arr.iter()
        .enumerate()
        .map(|(j, x)| {
            x.as_f64()
                .ok_or_else(|| format!("value {j} is not a number"))
        })
        .collect()
}

/// The `"index"` object shared by `/model` and `/stats`: which neighbour
/// backend serves queries, where it came from, and what building it cost.
fn index_object(engine: &QueryEngine) -> String {
    let idx = engine.index_stats();
    format!(
        "{{\"kind\":\"{}\",\"nodes\":{},\"from_artifact\":{},\"build_micros\":{}}}",
        idx.kind.name(),
        idx.nodes,
        idx.from_artifact,
        idx.build_micros,
    )
}

/// `GET /model` body.
fn model_body(engine: &QueryEngine) -> String {
    format!(
        "{{\"objects\":{},\"attributes\":{},\"subspaces\":{},\"index\":{}}}",
        engine.n(),
        engine.d(),
        engine.subspace_count(),
        index_object(engine),
    )
}

/// `GET /stats` body.
fn stats_body(engine: &QueryEngine, batcher: &Batcher) -> String {
    let s = batcher.stats();
    format!(
        "{{\"requests\":{},\"rows\":{},\"batches\":{},\"coalesced_batches\":{},\"index\":{}}}",
        s.requests.load(Ordering::Relaxed),
        s.rows.load(Ordering::Relaxed),
        s.batches.load(Ordering::Relaxed),
        s.coalesced_batches.load(Ordering::Relaxed),
        index_object(engine),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hics_data::model::{
        apply_normalization, AggregationKind, HicsModel, ModelSubspace, NormKind, ScorerKind,
        ScorerSpec,
    };
    use hics_data::SyntheticConfig;

    fn engine() -> QueryEngine {
        let g = SyntheticConfig::new(60, 3).with_seed(2).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
        let model = HicsModel::new(
            data,
            NormKind::None,
            norm,
            vec![ModelSubspace {
                dims: vec![0, 2],
                contrast: 0.6,
            }],
            ScorerSpec {
                kind: ScorerKind::KnnMean,
                k: 4,
            },
            AggregationKind::Average,
        );
        QueryEngine::from_model(&model, 1)
    }

    fn with_batcher<F: FnOnce(&QueryEngine, &Batcher)>(f: F) {
        let engine = Arc::new(engine());
        let batcher = Batcher::start(Arc::clone(&engine), 1, 16, 1);
        f(&engine, &batcher);
        batcher.shutdown();
    }

    #[test]
    fn vptree_engine_reports_index_and_scores_identically() {
        let g = SyntheticConfig::new(90, 3).with_seed(6).generate();
        let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
        let model = HicsModel::new(
            data,
            NormKind::None,
            norm,
            vec![ModelSubspace {
                dims: vec![0, 1],
                contrast: 0.7,
            }],
            ScorerSpec {
                kind: ScorerKind::Lof,
                k: 5,
            },
            AggregationKind::Average,
        );
        let brute = QueryEngine::from_model(&model, 1);
        let vp =
            QueryEngine::from_model_with_index(&model, Some(hics_outlier::IndexKind::VpTree), 1);
        let body = model_body(&vp);
        assert!(body.contains("\"index\":{\"kind\":\"vptree\""), "{body}");
        assert!(!body.contains("\"nodes\":0"), "{body}");
        for i in (0..90).step_by(9) {
            let row = g.dataset.row(i);
            assert_eq!(brute.score(&row), vp.score(&row), "row {i}");
        }
    }

    #[test]
    fn score_endpoint_single_and_batch() {
        with_batcher(|engine, batcher| {
            let (status, body) = score_endpoint(br#"{"point": [0.5, 0.5, 0.5]}"#, engine, batcher);
            assert_eq!(status, 200, "{body}");
            let score = json::parse(&body)
                .unwrap()
                .get("score")
                .unwrap()
                .as_f64()
                .unwrap();
            assert_eq!(score, engine.score(&[0.5, 0.5, 0.5]).unwrap());

            let (status, body) = score_endpoint(
                br#"{"points": [[0.5, 0.5, 0.5], [0.1, 0.9, 0.2]]}"#,
                engine,
                batcher,
            );
            assert_eq!(status, 200, "{body}");
            let doc = json::parse(&body).unwrap();
            let scores = doc.get("scores").unwrap().as_array().unwrap();
            assert_eq!(scores.len(), 2);
            assert_eq!(
                scores[1].as_f64().unwrap(),
                engine.score(&[0.1, 0.9, 0.2]).unwrap()
            );
        });
    }

    #[test]
    fn score_endpoint_rejects_bad_bodies() {
        with_batcher(|engine, batcher| {
            for (body, fragment) in [
                (&b"not json"[..], "JSON error"),
                (br#"{"nope": 1}"#, "\\\"point\\\" or \\\"points\\\""),
                (br#"{"points": []}"#, "empty"),
                (br#"{"points": [[1, 2]]}"#, "model expects 3"),
                (br#"{"point": [1, 2, "x"]}"#, "not a number"),
                (br#"{"points": 5}"#, "must be an array"),
            ] {
                let (status, msg) = score_endpoint(body, engine, batcher);
                assert_eq!(status, 400, "{msg}");
                assert!(msg.contains(fragment), "{msg} missing {fragment}");
            }
        });
    }

    #[test]
    fn dispatch_routes_and_404s() {
        with_batcher(|engine, batcher| {
            let get = |path: &str| Request {
                method: "GET".into(),
                path: path.into(),
                body: Vec::new(),
                close: false,
            };
            assert_eq!(dispatch(&get("/healthz"), engine, batcher).0, 200);
            let (status, body) = dispatch(&get("/model"), engine, batcher);
            assert_eq!(status, 200);
            assert!(body.contains("\"attributes\":3"), "{body}");
            assert!(body.contains("\"index\":{\"kind\":\"brute\""), "{body}");
            let (status, body) = dispatch(&get("/stats"), engine, batcher);
            assert_eq!(status, 200);
            assert!(body.contains("\"index\":{\"kind\":\"brute\""), "{body}");
            assert_eq!(dispatch(&get("/nope"), engine, batcher).0, 404);
            let delete = Request {
                method: "DELETE".into(),
                path: "/score".into(),
                body: Vec::new(),
                close: false,
            };
            assert_eq!(dispatch(&delete, engine, batcher).0, 405);
        });
    }
}
