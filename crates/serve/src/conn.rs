//! Per-connection protocol state machines for the non-blocking reactor.
//!
//! Each connection owns a non-blocking socket and advances through one
//! state machine per HTTP exchange: accumulate a request head, pull a sized
//! body or push bytes through the incremental NDJSON [`StreamDecoder`],
//! hand `/score` rows to the shared batcher (parking the connection until
//! the completion fires back through the reactor), and drain responses from
//! a per-connection [`OutBuf`] via vectored non-blocking writes.
//!
//! The wire behaviour is pinned to the blocking implementation bit for bit:
//! the decoder mirrors [`crate::http::BodyReader`]'s framing, budgets and
//! error strings exactly (an equivalence suite below feeds both the same
//! bodies), and every status line / error body / timeout bound matches what
//! `handle_connection` produced. Backpressure is explicit: when a peer
//! stops reading and the outbound buffer crosses the reactor's high-water
//! mark, the connection simply stops consuming input (interest drops to
//! `EPOLLOUT`) until the buffer drains — no thread is pinned, nothing is
//! dropped.

use crate::http::{
    error_body, finish_chunked, parse_head_bytes, write_chunk, write_chunked_head,
    write_response_traced, BodyError, Request, RequestError, RequestHead, MAX_BODY_BYTES,
    MAX_HEAD_BYTES,
};
use crate::metrics::{content_type_for, ReactorMetrics};
use crate::reactor::{Notifier, EPOLLIN, EPOLLOUT};
use crate::server::{
    begin_req_trace, dispatch, finish_req_trace, format_score_reply, parse_score_request,
    parse_stream_row, reload_endpoint, score_stream_line, stream_line, Ctx, ReqTrace,
};
use hics_obs::{Stage, Timeline};
use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Coalesce writes smaller than this into the tail segment instead of
/// starting a new one (keeps the segment count — and the iovec count per
/// flush — low for line-at-a-time streaming responses).
const COALESCE_BYTES: usize = 8 * 1024;

/// Read granularity per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;

/// Compact the input buffer once this many consumed bytes accumulate.
const INBUF_COMPACT: usize = 64 * 1024;

/// Outcome of driving a connection: keep it registered or tear it down.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Drive {
    /// Still alive; the reactor re-computes interest from
    /// [`Conn::wanted_interest`].
    Continue,
    /// Close the socket and free the slot.
    Close,
}

// ---------------------------------------------------------------------------
// Outbound buffer
// ---------------------------------------------------------------------------

/// Per-connection outbound byte queue, drained by non-blocking vectored
/// writes. Implements [`Write`] (infallibly) so the existing response
/// renderers — [`write_response`], [`write_chunk`], … — work unchanged.
#[derive(Default)]
pub(crate) struct OutBuf {
    segs: VecDeque<Vec<u8>>,
    front_pos: usize,
    len: usize,
}

impl OutBuf {
    /// Bytes still queued.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is fully drained.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops `n` bytes off the front of the queue.
    fn advance(&mut self, mut n: usize) {
        self.len -= n;
        while n > 0 {
            let remaining = self.segs[0].len() - self.front_pos;
            if n >= remaining {
                n -= remaining;
                self.segs.pop_front();
                self.front_pos = 0;
            } else {
                self.front_pos += n;
                n = 0;
            }
        }
    }

    /// Writes as much as the socket will take right now. Returns the bytes
    /// written; `WouldBlock` is progress 0, any other error is fatal.
    pub(crate) fn flush_to(&mut self, stream: &mut TcpStream) -> std::io::Result<usize> {
        let mut total = 0;
        while !self.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.segs.len().min(16));
            for (i, seg) in self.segs.iter().take(16).enumerate() {
                let start = if i == 0 { self.front_pos } else { 0 };
                slices.push(IoSlice::new(&seg[start..]));
            }
            match stream.write_vectored(&slices) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted no bytes",
                    ))
                }
                Ok(n) => {
                    self.advance(n);
                    total += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }
}

impl Write for OutBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.len += buf.len();
        match self.segs.back_mut() {
            Some(last) if last.len() + buf.len() <= COALESCE_BYTES => last.extend_from_slice(buf),
            _ => self.segs.push_back(buf.to_vec()),
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Push-based NDJSON body decoder
// ---------------------------------------------------------------------------

/// One decoded event out of the [`StreamDecoder`].
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum StreamEvent {
    /// One complete line (terminator stripped).
    Line(Vec<u8>),
    /// A line exceeded `max_line`; it was consumed and discarded.
    TooLong,
    /// Body exhausted; carries any final unterminated line.
    End(Vec<u8>),
}

/// Decoder sub-state (the push-parser expansion of
/// [`crate::http::BodyReader`]'s framing).
#[derive(Debug, Clone, Copy)]
enum Dec {
    /// `Content-Length` body: bytes remaining.
    Sized(usize),
    /// Chunked: accumulating the hex size line.
    ChunkSize,
    /// Chunked: bytes remaining in the current chunk.
    ChunkData(usize),
    /// Chunked: consuming the 2-byte CRLF after a chunk (`true` once the
    /// first of the two is in).
    ChunkTerm(bool),
    /// Chunked: consuming trailer lines through the final empty one.
    Trailers,
    /// Body fully decoded.
    Done,
}

/// Incremental, non-blocking equivalent of [`crate::http::BodyReader`]:
/// bytes are *pushed* in as they arrive off the socket, line events come
/// out. Framings, the per-consumed-byte budget, line-length discarding and
/// every error string are byte-identical to the blocking reader — the
/// equivalence tests below hold both against the same inputs.
pub(crate) struct StreamDecoder {
    state: Dec,
    consumed: usize,
    limit: usize,
    line: Vec<u8>,
    discarding: bool,
    sizeline: Vec<u8>,
    term_bad: bool,
    trailer_len: usize,
}

impl StreamDecoder {
    /// Decoder for `head`'s body under a hard byte budget of `limit`
    /// (framing overhead included, charged per consumed byte).
    pub(crate) fn new(head: &RequestHead, limit: usize) -> Self {
        let state = if head.chunked {
            Dec::ChunkSize
        } else {
            match head.content_length.unwrap_or(0) {
                0 => Dec::Done,
                n => Dec::Sized(n),
            }
        };
        Self {
            state,
            consumed: 0,
            limit,
            line: Vec::new(),
            discarding: false,
            sizeline: Vec::new(),
            term_bad: false,
            trailer_len: 0,
        }
    }

    /// Whether the body was fully consumed (keep-alive safe).
    pub(crate) fn finished(&self) -> bool {
        matches!(self.state, Dec::Done)
    }

    /// Runs one output byte through the line accumulator, mirroring
    /// `BodyReader::read_line`'s handling exactly.
    fn take_line_byte(&mut self, b: u8, max_line: usize) -> Option<StreamEvent> {
        if b == b'\n' {
            if self.discarding {
                self.discarding = false;
                return Some(StreamEvent::TooLong);
            }
            if self.line.last() == Some(&b'\r') {
                self.line.pop();
            }
            return Some(StreamEvent::Line(std::mem::take(&mut self.line)));
        }
        if !self.discarding {
            self.line.push(b);
            if self.line.len() > max_line {
                self.line.clear();
                self.discarding = true;
            }
        }
        None
    }

    /// Feeds `input`; returns how many bytes were consumed and, when a line
    /// boundary (or the end of the body) was reached, the event. `None`
    /// with full consumption means "need more bytes".
    pub(crate) fn next(
        &mut self,
        input: &[u8],
        max_line: usize,
    ) -> Result<(usize, Option<StreamEvent>), BodyError> {
        let mut used = 0;
        loop {
            if let Dec::Done = self.state {
                // Mirrors the blocking reader: a discarded line running to
                // the end of the body reports TooLong first; End (with any
                // final unterminated line) follows on the next call.
                if self.discarding {
                    self.discarding = false;
                    return Ok((used, Some(StreamEvent::TooLong)));
                }
                return Ok((used, Some(StreamEvent::End(std::mem::take(&mut self.line)))));
            }
            let Some(&b) = input.get(used) else {
                return Ok((used, None));
            };
            if self.consumed >= self.limit {
                return Err(BodyError::TooLarge { limit: self.limit });
            }
            self.consumed += 1;
            used += 1;
            match self.state {
                Dec::Sized(remaining) => {
                    self.state = if remaining == 1 {
                        Dec::Done
                    } else {
                        Dec::Sized(remaining - 1)
                    };
                    if let Some(ev) = self.take_line_byte(b, max_line) {
                        return Ok((used, Some(ev)));
                    }
                }
                Dec::ChunkData(remaining) => {
                    self.state = if remaining == 1 {
                        Dec::ChunkTerm(false)
                    } else {
                        Dec::ChunkData(remaining - 1)
                    };
                    if let Some(ev) = self.take_line_byte(b, max_line) {
                        return Ok((used, Some(ev)));
                    }
                }
                Dec::ChunkSize => {
                    if b == b'\n' {
                        if self.sizeline.last() == Some(&b'\r') {
                            self.sizeline.pop();
                        }
                        let text = std::str::from_utf8(&self.sizeline)
                            .map_err(|_| BodyError::Protocol("chunk size is not UTF-8".into()))?;
                        let hex = text.split(';').next().unwrap_or("").trim();
                        let size = usize::from_str_radix(hex, 16)
                            .map_err(|_| BodyError::Protocol(format!("bad chunk size {hex:?}")))?;
                        self.sizeline.clear();
                        self.state = if size == 0 {
                            self.trailer_len = 0;
                            Dec::Trailers
                        } else {
                            Dec::ChunkData(size)
                        };
                    } else {
                        self.sizeline.push(b);
                        if self.sizeline.len() > 128 {
                            return Err(BodyError::Protocol("chunk size line too long".into()));
                        }
                    }
                }
                // The blocking reader consumes *both* terminator bytes
                // before checking them, so the error (and the byte budget)
                // lands on the second byte — replicate that.
                Dec::ChunkTerm(false) => {
                    self.term_bad = b != b'\r';
                    self.state = Dec::ChunkTerm(true);
                }
                Dec::ChunkTerm(true) => {
                    if self.term_bad || b != b'\n' {
                        return Err(BodyError::Protocol("missing chunk terminator".into()));
                    }
                    self.state = Dec::ChunkSize;
                }
                Dec::Trailers => {
                    if b == b'\n' {
                        if self.trailer_len == 0 {
                            self.state = Dec::Done;
                        } else {
                            self.trailer_len = 0;
                        }
                    } else if b != b'\r' {
                        self.trailer_len += 1;
                        if self.trailer_len > MAX_HEAD_BYTES {
                            return Err(BodyError::Protocol("trailer section too large".into()));
                        }
                    }
                }
                Dec::Done => unreachable!("handled at loop head"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------------

/// Where the connection is in its current HTTP exchange.
enum State {
    /// Accumulating a request head (also the between-requests idle state).
    Head,
    /// Accumulating a sized body for a classic endpoint.
    Body {
        /// The parsed head the body belongs to.
        head: RequestHead,
        /// Declared body length.
        need: usize,
    },
    /// Inside a `/v2/score` NDJSON stream.
    Stream {
        /// Incremental body decoder.
        decoder: StreamDecoder,
        /// 1-based number of the last non-blank line.
        line_no: u64,
    },
    /// One stream line handed to the batcher (remote engines score over
    /// the wire, which must never run on a reactor thread); parked until
    /// its rendered chunk comes back, then the stream resumes.
    StreamAwait {
        /// The suspended body decoder (picks the stream back up).
        decoder: StreamDecoder,
        /// 1-based number of the last non-blank line.
        line_no: u64,
    },
    /// Rows handed to the batcher (or a reload thread); parked until the
    /// completion comes back through the reactor.
    AwaitBatch,
    /// Response rendered; draining the outbound buffer.
    Flush,
    /// Torn down (terminal).
    Closed,
}

/// How a stream left its decode loop.
enum StreamExit {
    /// Clean end of body; keep-alive iff the decoder finished.
    Done { finished: bool },
    /// Unrecoverable decode/framing error, reported in-stream at the given
    /// line number before closing.
    Fail { msg: String, line_no: u64 },
    /// One line submitted to the batcher (remote scoring); park in
    /// [`State::StreamAwait`] until the rendered chunk comes back.
    Park,
}

/// Hands one remote stream line to the batcher; the completion carries
/// the fully rendered NDJSON chunk back through the reactor's notifier.
/// Cross-connection coalescing still applies: parked lines from many
/// streams ride one upstream fan-out.
fn submit_stream_row(
    ctx: &Ctx,
    notifier: &Arc<Notifier>,
    token: usize,
    epoch: u64,
    row: Vec<f64>,
    line_no: u64,
) {
    let notifier = Arc::clone(notifier);
    let stats = Arc::clone(&ctx.stream_stats);
    ctx.batcher.submit(
        vec![row],
        Box::new(move |reply| {
            let result = match reply {
                None => Err("server is shutting down".to_string()),
                Some(mut batch) => match batch.results.pop() {
                    Some(Ok(score)) => Ok((score, batch.partial)),
                    Some(Err(e)) => Err(e.to_string()),
                    None => Err("upstream scoring failed: router returned no result".to_string()),
                },
            };
            let chunk = stream_line(result, line_no, &stats);
            notifier.complete(token, epoch, 200, chunk);
        }),
    );
}

/// One live connection owned by a reactor.
pub(crate) struct Conn {
    stream: TcpStream,
    state: State,
    inbuf: Vec<u8>,
    inpos: usize,
    out: OutBuf,
    close_after: bool,
    eof: bool,
    /// The owning reactor's labeled I/O counters.
    rm: Arc<ReactorMetrics>,
    /// Lifecycle timeline of the in-flight request (idle between requests).
    timeline: Timeline,
    /// Root-span bookkeeping of the in-flight request (`None` between
    /// requests, for streams, and with instrumentation off).
    trace: Option<ReqTrace>,
    /// Path of the in-flight request, captured only when slow-query
    /// logging is configured (empty otherwise).
    cur_path: String,
    /// Whether the last interest computation had this connection paused at
    /// the high-water mark (used to count stall *transitions*).
    was_paused: bool,
    /// Absolute expiry of the state's idle budget (`None` while parked on
    /// the batcher — the batcher always completes).
    pub(crate) deadline: Option<Instant>,
    /// Event mask currently registered with epoll.
    pub(crate) registered: u32,
}

impl Conn {
    /// Wraps a freshly accepted (already non-blocking) socket.
    pub(crate) fn new(stream: TcpStream, ctx: &Ctx, rm: Arc<ReactorMetrics>) -> Self {
        Self {
            stream,
            state: State::Head,
            inbuf: Vec::new(),
            inpos: 0,
            out: OutBuf::default(),
            close_after: false,
            eof: false,
            rm,
            timeline: Timeline::new(),
            trace: None,
            cur_path: String::new(),
            was_paused: false,
            deadline: Some(Instant::now() + ctx.config.keep_alive),
            registered: EPOLLIN,
        }
    }

    /// The socket (for epoll registration).
    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// The event mask this connection currently needs: readable while a
    /// request is being consumed (unless the outbound buffer is over the
    /// high-water mark — backpressure), writable while bytes are queued.
    pub(crate) fn wanted_interest(&self, high_water: usize) -> u32 {
        let mut mask = 0;
        let paused = self.out.len() >= high_water;
        if !self.eof
            && !paused
            && matches!(
                self.state,
                State::Head | State::Body { .. } | State::Stream { .. }
            )
        {
            mask |= EPOLLIN;
        }
        if !self.out.is_empty() {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Renders one complete response and moves to [`State::Flush`].
    fn respond(&mut self, ctx: &Ctx, status: u16, body: &str, close: bool) {
        self.respond_typed(ctx, status, "application/json", body, close);
    }

    /// [`Conn::respond`] with an explicit content type (`/metrics` answers
    /// in Prometheus text exposition, everything else in JSON).
    fn respond_typed(
        &mut self,
        ctx: &Ctx,
        status: u16,
        content_type: &str,
        body: &str,
        close: bool,
    ) {
        self.close_after = self.close_after || close;
        if let Some(rt) = self.trace.as_mut() {
            rt.status = status;
        }
        let echo = self.trace_echo();
        // Writing into the in-memory OutBuf cannot fail.
        let _ = write_response_traced(
            &mut self.out,
            status,
            content_type,
            body,
            close,
            echo.as_deref(),
        );
        self.state = State::Flush;
        self.deadline = Some(Instant::now() + ctx.config.keep_alive);
    }

    /// The `x-hics-trace` value to put on the response — only when the
    /// client sent the header, so untraced exchanges stay byte-identical.
    fn trace_echo(&self) -> Option<String> {
        self.trace
            .as_ref()
            .filter(|rt| rt.explicit)
            .map(ReqTrace::header)
    }

    /// The per-state idle budget, restarted whenever the connection makes
    /// socket progress in either direction.
    fn reset_deadline(&mut self, ctx: &Ctx) {
        let budget = match self.state {
            State::Stream { .. } => ctx.config.stream_idle,
            State::AwaitBatch | State::StreamAwait { .. } => return,
            _ => ctx.config.keep_alive,
        };
        self.deadline = Some(Instant::now() + budget);
    }

    /// Reads once from the socket. Returns whether bytes (or EOF) arrived;
    /// a fatal socket error closes the connection silently — exactly what
    /// the blocking handler's error propagation did.
    fn read_some(&mut self) -> Result<bool, ()> {
        let mut tmp = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(true);
                }
                Ok(n) => {
                    self.rm.bytes_in.add(n as u64);
                    self.inbuf.extend_from_slice(&tmp[..n]);
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
    }

    /// Reclaims consumed input-buffer space.
    fn compact_inbuf(&mut self) {
        if self.inpos == self.inbuf.len() {
            self.inbuf.clear();
            self.inpos = 0;
        } else if self.inpos > INBUF_COMPACT {
            self.inbuf.drain(..self.inpos);
            self.inpos = 0;
        }
    }

    /// Advances the connection as far as current input, output space and
    /// state allow. `readable` hints that the socket has bytes waiting.
    pub(crate) fn drive(
        &mut self,
        ctx: &Ctx,
        notifier: &Arc<Notifier>,
        token: usize,
        epoch: u64,
        readable: bool,
    ) -> Drive {
        let mut may_read = readable;
        loop {
            let mut progressed = false;
            let paused = self.out.len() >= ctx.config.high_water;
            if paused && !self.was_paused {
                ctx.metrics.backpressure_stalls.inc();
            }
            self.was_paused = paused;
            if may_read
                && !paused
                && !self.eof
                && matches!(
                    self.state,
                    State::Head | State::Body { .. } | State::Stream { .. }
                )
            {
                match self.read_some() {
                    Ok(true) => {
                        progressed = true;
                        self.reset_deadline(ctx);
                    }
                    Ok(false) => may_read = false,
                    Err(()) => {
                        self.state = State::Closed;
                        return Drive::Close;
                    }
                }
            }
            progressed |= self.step(ctx, notifier, token, epoch);
            if !self.out.is_empty() {
                match self.out.flush_to(&mut self.stream) {
                    Ok(0) => {}
                    Ok(n) => {
                        self.rm.bytes_out.add(n as u64);
                        progressed = true;
                        self.reset_deadline(ctx);
                    }
                    Err(_) => {
                        self.state = State::Closed;
                        return Drive::Close;
                    }
                }
            }
            if matches!(self.state, State::Closed) {
                return Drive::Close;
            }
            if !progressed {
                return Drive::Continue;
            }
        }
    }

    /// Runs the state machine over whatever is buffered. Returns whether
    /// any state advanced or bytes were consumed/produced.
    fn step(&mut self, ctx: &Ctx, notifier: &Arc<Notifier>, token: usize, epoch: u64) -> bool {
        let mut did = false;
        loop {
            match &mut self.state {
                State::Head => {
                    // The timeline starts when the first request bytes are
                    // seen in the buffer — the closest observable point to
                    // first-byte arrival on a non-blocking socket.
                    if ctx.config.instrument
                        && self.inpos < self.inbuf.len()
                        && !self.timeline.is_started()
                    {
                        self.timeline.start();
                    }
                    let avail = &self.inbuf[self.inpos..];
                    let end = avail
                        .windows(4)
                        .position(|w| w == b"\r\n\r\n")
                        .map(|p| p + 4);
                    match end {
                        // The blocking reader 431s the moment the head
                        // exceeds the bound without its terminator having
                        // completed — so a terminator ending past the bound
                        // is too late.
                        Some(end) if end <= MAX_HEAD_BYTES => {
                            let parsed = parse_head_bytes(&avail[..end]);
                            self.inpos += end;
                            self.compact_inbuf();
                            did = true;
                            match parsed {
                                Ok(head) => {
                                    self.timeline.mark(Stage::HeadParse);
                                    self.route(ctx, head);
                                }
                                Err(RequestError::Bad { status, msg }) => {
                                    self.respond(ctx, status, &error_body(&msg), true)
                                }
                                Err(_) => {
                                    self.state = State::Closed;
                                    return true;
                                }
                            }
                        }
                        _ if avail.len() > MAX_HEAD_BYTES => {
                            did = true;
                            self.respond(ctx, 431, &error_body("request head too large"), true);
                        }
                        _ if self.eof => {
                            did = true;
                            if avail.is_empty() {
                                // Clean close between requests.
                                self.state = State::Closed;
                                return true;
                            }
                            self.respond(
                                ctx,
                                400,
                                &error_body("connection closed mid-request"),
                                true,
                            );
                        }
                        _ => break,
                    }
                }
                State::Body { head, need } => {
                    let need = *need;
                    if self.inbuf.len() - self.inpos >= need {
                        let body = self.inbuf[self.inpos..self.inpos + need].to_vec();
                        self.inpos += need;
                        let head = std::mem::replace(
                            head,
                            RequestHead {
                                method: String::new(),
                                path: String::new(),
                                content_length: None,
                                chunked: false,
                                close: false,
                                trace: None,
                            },
                        );
                        self.compact_inbuf();
                        did = true;
                        self.finish_request(ctx, notifier, token, epoch, head, body);
                    } else if self.eof {
                        did = true;
                        self.respond(ctx, 400, &error_body("connection closed mid-body"), true);
                    } else {
                        break;
                    }
                }
                State::Stream { decoder, line_no } => {
                    let mut exit: Option<StreamExit> = None;
                    let mut stalled = false;
                    loop {
                        match decoder.next(&self.inbuf[self.inpos..], ctx.config.max_line_bytes) {
                            Ok((used, ev)) => {
                                self.inpos += used;
                                if used > 0 {
                                    did = true;
                                }
                                match ev {
                                    None => {
                                        if self.eof {
                                            // Mid-body EOF: same Protocol
                                            // error the blocking reader
                                            // raises, reported in-stream.
                                            exit = Some(StreamExit::Fail {
                                                msg: BodyError::Protocol(
                                                    "connection closed mid-body".into(),
                                                )
                                                .to_string(),
                                                line_no: *line_no,
                                            });
                                        } else {
                                            stalled = true;
                                        }
                                        break;
                                    }
                                    Some(StreamEvent::Line(line))
                                    | Some(StreamEvent::End(line)) => {
                                        let end = decoder.finished();
                                        if !line.iter().all(u8::is_ascii_whitespace) {
                                            *line_no += 1;
                                            let engine = ctx.handle.load();
                                            if engine.is_remote() {
                                                // Remote scoring blocks on
                                                // upstream sockets — park the
                                                // stream on the batcher like a
                                                // `/score` request instead of
                                                // stalling the event loop.
                                                // (Parse failures never leave
                                                // this thread.)
                                                match parse_stream_row(&line, engine.d()) {
                                                    Ok(row) => {
                                                        submit_stream_row(
                                                            ctx, notifier, token, epoch, row,
                                                            *line_no,
                                                        );
                                                        exit = Some(StreamExit::Park);
                                                        break;
                                                    }
                                                    Err(msg) => {
                                                        let reply = stream_line(
                                                            Err(msg),
                                                            *line_no,
                                                            &ctx.stream_stats,
                                                        );
                                                        let _ = write_chunk(
                                                            &mut self.out,
                                                            reply.as_bytes(),
                                                        );
                                                        did = true;
                                                    }
                                                }
                                            } else {
                                                let reply = stream_line(
                                                    score_stream_line(&line, ctx),
                                                    *line_no,
                                                    &ctx.stream_stats,
                                                );
                                                let _ =
                                                    write_chunk(&mut self.out, reply.as_bytes());
                                                did = true;
                                            }
                                        }
                                        if end {
                                            exit = Some(StreamExit::Done { finished: true });
                                            break;
                                        }
                                    }
                                    Some(StreamEvent::TooLong) => {
                                        *line_no += 1;
                                        let msg = format!(
                                            "line exceeds {} bytes and was discarded",
                                            ctx.config.max_line_bytes
                                        );
                                        let reply =
                                            stream_line(Err(msg), *line_no, &ctx.stream_stats);
                                        let _ = write_chunk(&mut self.out, reply.as_bytes());
                                        did = true;
                                    }
                                }
                            }
                            Err(e) => {
                                exit = Some(StreamExit::Fail {
                                    msg: e.to_string(),
                                    line_no: *line_no,
                                });
                                break;
                            }
                        }
                    }
                    self.compact_inbuf();
                    match exit {
                        Some(StreamExit::Done { finished }) => {
                            did = true;
                            let _ = finish_chunked(&mut self.out);
                            if !finished {
                                self.close_after = true;
                            }
                            self.state = State::Flush;
                            self.deadline = Some(Instant::now() + ctx.config.keep_alive);
                        }
                        Some(StreamExit::Fail { msg, line_no }) => {
                            did = true;
                            let reply = stream_line(Err(msg), line_no, &ctx.stream_stats);
                            let _ = write_chunk(&mut self.out, reply.as_bytes());
                            let _ = finish_chunked(&mut self.out);
                            self.close_after = true;
                            self.state = State::Flush;
                            self.deadline = Some(Instant::now() + ctx.config.keep_alive);
                        }
                        Some(StreamExit::Park) => {
                            did = true;
                            let State::Stream { decoder, line_no } =
                                std::mem::replace(&mut self.state, State::Closed)
                            else {
                                unreachable!("Park only leaves State::Stream");
                            };
                            self.state = State::StreamAwait { decoder, line_no };
                            self.deadline = None;
                        }
                        None => {
                            debug_assert!(stalled);
                            break;
                        }
                    }
                }
                State::StreamAwait { .. } | State::AwaitBatch => break,
                State::Flush => {
                    if self.out.is_empty() {
                        did = true;
                        self.timeline.mark(Stage::Flush);
                        let trace_id = self.trace.as_ref().map(|rt| rt.trace_id);
                        if let Some(rt) = self.trace.take() {
                            // Before observe_request: finishing the trace
                            // reads the timeline that observe resets.
                            finish_req_trace(ctx, rt, &self.timeline);
                        }
                        ctx.metrics.observe_request(
                            &ctx.config,
                            &self.cur_path,
                            &mut self.timeline,
                            trace_id,
                        );
                        if self.close_after {
                            self.state = State::Closed;
                            return true;
                        }
                        self.state = State::Head;
                        self.deadline = Some(Instant::now() + ctx.config.keep_alive);
                    } else {
                        break;
                    }
                }
                State::Closed => break,
            }
        }
        did
    }

    /// Routes a parsed head: streaming requests start immediately, classic
    /// requests move on to collecting their sized body.
    fn route(&mut self, ctx: &Ctx, head: RequestHead) {
        if head.method == "POST" && head.path == "/v2/score" {
            // Streams report through their own counters, not the
            // request-stage histograms — and are not traced (one span per
            // line would swamp the store).
            self.timeline.reset();
            self.trace = None;
            ctx.stream_stats.streams.inc();
            self.close_after = self.close_after || head.close;
            let _ = write_chunked_head(&mut self.out, 200, "application/x-ndjson", head.close);
            self.state = State::Stream {
                decoder: StreamDecoder::new(&head, ctx.config.max_stream_bytes),
                line_no: 0,
            };
            self.deadline = Some(Instant::now() + ctx.config.stream_idle);
            return;
        }
        // The head has already been parsed by now; back-date the root span
        // to the first byte's arrival (the timeline's start).
        let elapsed_ns = self
            .timeline
            .offset_ns(Stage::HeadParse)
            .unwrap_or_default();
        self.trace = begin_req_trace(ctx, &head, elapsed_ns);
        if head.chunked {
            self.respond(
                ctx,
                411,
                &error_body("chunked bodies are not supported; send Content-Length"),
                true,
            );
            return;
        }
        let need = head.content_length.unwrap_or(0);
        if need > MAX_BODY_BYTES {
            self.respond(
                ctx,
                413,
                &error_body(&format!(
                    "body of {need} bytes exceeds limit {MAX_BODY_BYTES}"
                )),
                true,
            );
            return;
        }
        self.state = State::Body { head, need };
    }

    /// Dispatches one complete classic request. `/score` goes to the
    /// batcher and `/admin/reload` to a short-lived thread — both park the
    /// connection until their completion fires back through the reactor;
    /// everything else answers inline.
    fn finish_request(
        &mut self,
        ctx: &Ctx,
        notifier: &Arc<Notifier>,
        token: usize,
        epoch: u64,
        head: RequestHead,
        body: Vec<u8>,
    ) {
        self.close_after = self.close_after || head.close;
        self.timeline.mark(Stage::Body);
        if ctx.config.slow_query.is_some() {
            self.cur_path.clear();
            self.cur_path.push_str(&head.path);
        }
        match (head.method.as_str(), head.path.as_str()) {
            ("POST", "/score") => match parse_score_request(&body, ctx.handle.load().d()) {
                Err((status, rendered)) => self.respond(ctx, status, &rendered, head.close),
                Ok((rows, single)) => {
                    let notifier = Arc::clone(notifier);
                    // Plant the request's trace context for the batcher to
                    // capture at enqueue — a remote engine's fan-out spans
                    // parent under this request.
                    hics_obs::trace::set_current(self.trace.as_ref().map(ReqTrace::context));
                    ctx.batcher.submit(
                        rows,
                        Box::new(move |reply| {
                            let (status, body) = format_score_reply(reply, single);
                            notifier.complete(token, epoch, status, body);
                        }),
                    );
                    hics_obs::trace::set_current(None);
                    self.timeline.mark(Stage::Enqueue);
                    self.state = State::AwaitBatch;
                    self.deadline = None;
                }
            },
            ("POST", "/admin/reload") => {
                // Artifact loading can take seconds; it must never run on a
                // reactor thread. Reloads are rare admin operations, so a
                // short-lived thread per request is fine.
                let ctx = ctx.clone();
                let notifier = Arc::clone(notifier);
                std::thread::spawn(move || {
                    let (status, out) = reload_endpoint(&body, &ctx);
                    notifier.complete(token, epoch, status, out);
                });
                self.state = State::AwaitBatch;
                self.deadline = None;
            }
            _ => {
                let request = Request {
                    method: head.method,
                    path: head.path,
                    body,
                    close: head.close,
                    trace: head.trace,
                };
                let (status, out) = dispatch(&request, ctx);
                self.timeline.mark(Stage::Score);
                self.respond_typed(
                    ctx,
                    status,
                    content_type_for(&request.path, status),
                    &out,
                    request.close,
                );
            }
        }
    }

    /// Delivers a batcher / reload completion. A classic request renders
    /// its response and starts draining; a parked stream line appends its
    /// pre-rendered chunk and the stream picks back up (the reactor
    /// re-drives this connection, so buffered input continues decoding
    /// without waiting for the socket).
    pub(crate) fn on_completion(&mut self, ctx: &Ctx, status: u16, body: String) {
        match &mut self.state {
            State::AwaitBatch => {
                self.timeline.mark(Stage::Score);
                if let Some(rt) = self.trace.as_mut() {
                    rt.status = status;
                }
                let echo = self.trace_echo();
                let _ = write_response_traced(
                    &mut self.out,
                    status,
                    "application/json",
                    &body,
                    self.close_after,
                    echo.as_deref(),
                );
                self.state = State::Flush;
                self.deadline = Some(Instant::now() + ctx.config.keep_alive);
            }
            State::StreamAwait { decoder, .. } => {
                let _ = write_chunk(&mut self.out, body.as_bytes());
                if decoder.finished() {
                    let _ = finish_chunked(&mut self.out);
                    self.state = State::Flush;
                    self.deadline = Some(Instant::now() + ctx.config.keep_alive);
                } else {
                    let State::StreamAwait { decoder, line_no } =
                        std::mem::replace(&mut self.state, State::Closed)
                    else {
                        unreachable!("matched StreamAwait above");
                    };
                    self.state = State::Stream { decoder, line_no };
                    self.deadline = Some(Instant::now() + ctx.config.stream_idle);
                }
            }
            _ => {}
        }
    }

    /// Enforces the state's idle budget, mirroring what the blocking
    /// handler's socket timeouts produced: silent close while waiting for a
    /// head or draining a response, `400` mid-sized-body, and an in-stream
    /// error line (then close) for an idle stream — unless the *peer* is
    /// the one not draining its scores, which is a silent close just like a
    /// blocking write timeout was.
    pub(crate) fn on_timeout(&mut self, ctx: &Ctx) {
        enum T {
            Silent,
            BodyTimeout,
            StreamIdle(u64),
        }
        let what = match &self.state {
            State::Head | State::Flush => T::Silent,
            State::Body { .. } => T::BodyTimeout,
            State::Stream { line_no, .. } => {
                if self.out.is_empty() {
                    T::StreamIdle(*line_no)
                } else {
                    T::Silent
                }
            }
            State::AwaitBatch | State::StreamAwait { .. } | State::Closed => return,
        };
        match what {
            T::Silent => self.state = State::Closed,
            T::BodyTimeout => {
                self.respond(ctx, 400, &error_body("connection closed mid-body"), true)
            }
            T::StreamIdle(line_no) => {
                let msg = format!(
                    "stream idle for more than {:?}; closing",
                    ctx.config.stream_idle
                );
                let reply = stream_line(Err(msg), line_no, &ctx.stream_stats);
                let _ = write_chunk(&mut self.out, reply.as_bytes());
                let _ = finish_chunked(&mut self.out);
                self.close_after = true;
                self.state = State::Flush;
                self.deadline = Some(Instant::now() + ctx.config.keep_alive);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{write_response, BodyReader, LineRead};
    use std::io::Cursor;

    fn sized_head(len: usize) -> RequestHead {
        RequestHead {
            method: "POST".into(),
            path: "/v2/score".into(),
            content_length: Some(len),
            chunked: false,
            close: false,
            trace: None,
        }
    }

    fn chunked_head() -> RequestHead {
        RequestHead {
            method: "POST".into(),
            path: "/v2/score".into(),
            content_length: None,
            chunked: true,
            close: false,
            trace: None,
        }
    }

    /// Everything observable about one pass over a body: the line events in
    /// order, and the terminal error (if any) by Display string.
    #[derive(Debug, PartialEq)]
    struct Observed {
        events: Vec<String>,
        error: Option<String>,
        finished: bool,
    }

    fn observe_blocking(
        head: &RequestHead,
        body: &[u8],
        limit: usize,
        max_line: usize,
    ) -> Observed {
        let mut cursor = Cursor::new(body.to_vec());
        let mut reader = BodyReader::new(&mut cursor, head, limit);
        let mut buf = Vec::new();
        let mut events = Vec::new();
        loop {
            match reader.read_line(&mut buf, max_line) {
                Ok(LineRead::Line) => {
                    events.push(format!("line:{}", String::from_utf8_lossy(&buf)))
                }
                Ok(LineRead::TooLong) => events.push("toolong".into()),
                Ok(LineRead::End) => {
                    events.push(format!("end:{}", String::from_utf8_lossy(&buf)));
                    return Observed {
                        events,
                        error: None,
                        finished: reader.finished(),
                    };
                }
                Err(e) => {
                    return Observed {
                        events,
                        error: Some(e.to_string()),
                        finished: reader.finished(),
                    }
                }
            }
        }
    }

    fn observe_push(
        head: &RequestHead,
        body: &[u8],
        limit: usize,
        max_line: usize,
        feed: usize,
    ) -> Observed {
        let mut dec = StreamDecoder::new(head, limit);
        let mut events = Vec::new();
        let mut pos = 0;
        loop {
            // Feed at most `feed` bytes per call, as a socket would.
            let upto = (pos + feed).min(body.len());
            match dec.next(&body[pos..upto], max_line) {
                Ok((used, ev)) => {
                    pos += used;
                    match ev {
                        Some(StreamEvent::Line(l)) => {
                            events.push(format!("line:{}", String::from_utf8_lossy(&l)))
                        }
                        Some(StreamEvent::TooLong) => events.push("toolong".into()),
                        Some(StreamEvent::End(l)) => {
                            events.push(format!("end:{}", String::from_utf8_lossy(&l)));
                            return Observed {
                                events,
                                error: None,
                                finished: dec.finished(),
                            };
                        }
                        None => {
                            if pos >= body.len() {
                                // EOF mid-body: the blocking reader raises
                                // Protocol("connection closed mid-body").
                                return Observed {
                                    events,
                                    error: Some("connection closed mid-body".into()),
                                    finished: dec.finished(),
                                };
                            }
                        }
                    }
                }
                Err(e) => {
                    return Observed {
                        events,
                        error: Some(e.to_string()),
                        finished: dec.finished(),
                    }
                }
            }
        }
    }

    /// The decoder and the blocking reader must observe identical event
    /// sequences, errors and keep-alive verdicts on every body — across
    /// sized and chunked framings, malformed framing, blown byte budgets,
    /// over-long lines, and any socket read granularity.
    #[test]
    fn decoder_matches_blocking_reader_on_every_framing() {
        let chunked_ok =
            b"4\r\n[1,2\r\n3;ext=1\r\n,3]\r\n8\r\n\n[4,5,6]\r\n1\r\n\n\r\n0\r\nTrailer: x\r\n\r\n";
        let cases: Vec<(RequestHead, Vec<u8>, usize, usize)> = vec![
            (
                sized_head(19),
                b"[1,2]\n[3,4]\r\n\n[5,6]".to_vec(),
                usize::MAX,
                1024,
            ),
            (sized_head(0), Vec::new(), usize::MAX, 1024),
            (
                sized_head(23),
                b"0123456789abcdef\nshort\n".to_vec(),
                usize::MAX,
                8,
            ),
            (sized_head(256), vec![b'x'; 256], 64, 1 << 20),
            (sized_head(40), vec![b'y'; 40], usize::MAX, 8),
            (chunked_head(), chunked_ok.to_vec(), usize::MAX, 1024),
            (chunked_head(), b"zz\r\nhello\r\n".to_vec(), usize::MAX, 64),
            (chunked_head(), b"5\r\nhelloXX".to_vec(), usize::MAX, 64),
            (chunked_head(), b"5\r\nhel".to_vec(), usize::MAX, 64),
            (chunked_head(), chunked_ok.to_vec(), 20, 1024),
            (
                chunked_head(),
                b"2\r\nab\r\n0\r\n\r\n".to_vec(),
                usize::MAX,
                1024,
            ),
        ];
        for (head, body, limit, max_line) in cases {
            let want = observe_blocking(&head, &body, limit, max_line);
            for feed in [1, 3, 7, body.len().max(1)] {
                let got = observe_push(&head, &body, limit, max_line, feed);
                assert_eq!(
                    got,
                    want,
                    "body {:?} (feed {feed})",
                    String::from_utf8_lossy(&body)
                );
            }
        }
    }

    /// Truncated bodies (EOF mid-body) must match the blocking reader's
    /// Protocol error.
    #[test]
    fn decoder_reports_truncated_bodies_like_the_blocking_reader() {
        for (head, body) in [
            (sized_head(50), &b"short"[..]),
            (chunked_head(), &b"5\r\nhel"[..]),
            (chunked_head(), &b"5\r\nhello\r\n3\r\nab"[..]),
        ] {
            let want = observe_blocking(&head, body, usize::MAX, 64);
            let got = observe_push(&head, body, usize::MAX, 64, 2);
            assert_eq!(got, want, "body {:?}", String::from_utf8_lossy(body));
            assert_eq!(
                got.error.as_deref(),
                Some("connection closed mid-body"),
                "{got:?}"
            );
        }
    }

    #[test]
    fn outbuf_coalesces_small_writes_and_tracks_length() {
        let mut out = OutBuf::default();
        out.write_all(b"hello ").unwrap();
        out.write_all(b"world").unwrap();
        assert_eq!(out.len(), 11);
        assert_eq!(out.segs.len(), 1, "small writes share a segment");
        out.write_all(&vec![b'x'; COALESCE_BYTES + 1]).unwrap();
        assert_eq!(out.segs.len(), 2, "large writes get their own segment");
        out.advance(11);
        assert_eq!(out.len(), COALESCE_BYTES + 1);
        out.advance(COALESCE_BYTES + 1);
        assert!(out.is_empty());
        assert!(out.segs.is_empty());
    }

    /// The existing response renderers drive OutBuf through its `Write`
    /// impl and produce the same bytes they would on a socket.
    #[test]
    fn outbuf_renders_responses_identically_to_a_socket() {
        let mut direct = Vec::new();
        write_response(&mut direct, 200, "{\"ok\":true}", false).unwrap();
        let mut out = OutBuf::default();
        write_response(&mut out, 200, "{\"ok\":true}", false).unwrap();
        let mut flat = Vec::new();
        for (i, seg) in out.segs.iter().enumerate() {
            let start = if i == 0 { out.front_pos } else { 0 };
            flat.extend_from_slice(&seg[start..]);
        }
        assert_eq!(flat, direct);
    }
}
