//! Minimal HTTP/1.1 request parsing and response writing over blocking
//! streams — hand-rolled on `std::io`, no registry dependencies.
//!
//! Supports what the scoring service needs: request line + headers,
//! `Content-Length` bodies, persistent connections (HTTP/1.1 keep-alive
//! semantics), and bounded header/body sizes so a hostile peer cannot make
//! the server buffer unbounded input. Head parsing
//! ([`read_head`]) is split from body consumption so the streaming v2
//! endpoint can route on the head and then pull the body **incrementally**
//! through a [`BodyReader`] — which also decodes `Transfer-Encoding:
//! chunked`, the natural framing for an NDJSON stream of unknown length.
//! Classic endpoints still read one sized body via [`read_sized_body`]
//! (chunked bodies there keep answering `411 Length Required`, bitwise
//! compatible with the v1 protocol), and responses of unknown length go out
//! chunked via [`write_chunked_head`] / [`write_chunk`] /
//! [`finish_chunked`].

use std::io::{Read, Write};

/// Upper bound on request head (request line + headers) bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on request body bytes (a 64 MB batch of points is far above
/// any sane scoring request).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed request head: everything before the body.
#[derive(Debug, Clone)]
pub struct RequestHead {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query strings are not split off; the service
    /// has no query parameters).
    pub path: String,
    /// Declared `Content-Length`, if any.
    pub content_length: Option<usize>,
    /// Whether the body uses `Transfer-Encoding: chunked`.
    pub chunked: bool,
    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`, or an HTTP/1.0 request without
    /// `keep-alive`).
    pub close: bool,
    /// Parsed `x-hics-trace` header (`trace_id`, `parent span_id`), if the
    /// client sent a well-formed one. Malformed values are ignored rather
    /// than rejected — tracing must never fail a scoring request.
    pub trace: Option<(u64, u64)>,
}

/// One fully read HTTP request (head + sized body) — the classic
/// non-streaming form.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path.
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection.
    pub close: bool,
    /// Parsed `x-hics-trace` header, as on [`RequestHead`].
    pub trace: Option<(u64, u64)>,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum RequestError {
    /// The connection closed cleanly before a new request started.
    Closed,
    /// Socket-level failure mid-request.
    Io(std::io::Error),
    /// The peer sent something that is not valid HTTP; the given status
    /// line + message should be returned before closing.
    Bad {
        /// HTTP status code to answer with.
        status: u16,
        /// Human-readable reason for the error body.
        msg: String,
    },
}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one HTTP/1.1 request head from the stream (up to and including the
/// blank line). Returns [`RequestError::Closed`] on clean EOF before any
/// request byte.
pub fn read_head<S: Read>(stream: &mut S) -> Result<RequestHead, RequestError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Read the head byte-by-byte until CRLFCRLF. Callers hand in a
    // `BufReader` that lives for the whole connection (see
    // `server::handle_connection`), so these reads are in-memory, not
    // per-byte syscalls, and over-read pipelined bytes are retained.
    loop {
        let got = stream.read(&mut byte)?;
        if got == 0 {
            if head.is_empty() {
                return Err(RequestError::Closed);
            }
            return Err(RequestError::Bad {
                status: 400,
                msg: "connection closed mid-request".into(),
            });
        }
        head.push(byte[0]);
        if head.len() > MAX_HEAD_BYTES {
            return Err(RequestError::Bad {
                status: 431,
                msg: "request head too large".into(),
            });
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    parse_head_bytes(&head)
}

/// Parses one fully buffered request head (request line + headers, through
/// the terminating blank line) — the shared back half of [`read_head`],
/// also driven by the non-blocking reactor once it has accumulated a
/// complete head.
pub(crate) fn parse_head_bytes(head: &[u8]) -> Result<RequestHead, RequestError> {
    let head = std::str::from_utf8(head).map_err(|_| RequestError::Bad {
        status: 400,
        msg: "request head is not UTF-8".into(),
    })?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
            (m.to_string(), p.to_string(), v)
        }
        _ => {
            return Err(RequestError::Bad {
                status: 400,
                msg: format!("malformed request line {request_line:?}"),
            })
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RequestError::Bad {
            status: 505,
            msg: format!("unsupported protocol {version:?}"),
        });
    }

    let mut content_length: Option<usize> = None;
    let mut connection = String::new();
    let mut chunked = false;
    let mut trace = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Bad {
                status: 400,
                msg: format!("malformed header {line:?}"),
            });
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value.parse().map_err(|_| RequestError::Bad {
                    status: 400,
                    msg: format!("bad Content-Length {value:?}"),
                })?;
                content_length = Some(n);
            }
            "connection" => connection = value.to_ascii_lowercase(),
            "transfer-encoding" => chunked = value.to_ascii_lowercase().contains("chunked"),
            "x-hics-trace" => trace = hics_obs::trace::parse_header(value),
            _ => {}
        }
    }
    let close = match version {
        "HTTP/1.0" => connection != "keep-alive",
        _ => connection == "close",
    };
    Ok(RequestHead {
        method,
        path,
        content_length,
        chunked,
        close,
        trace,
    })
}

/// Reads the sized body a classic (non-streaming) endpoint expects.
/// Chunked bodies answer `411 Length Required` here — exactly the v1
/// behaviour; streaming endpoints use [`BodyReader`] instead.
pub fn read_sized_body<S: Read>(
    stream: &mut S,
    head: &RequestHead,
) -> Result<Vec<u8>, RequestError> {
    if head.chunked {
        return Err(RequestError::Bad {
            status: 411,
            msg: "chunked bodies are not supported; send Content-Length".into(),
        });
    }
    let len = head.content_length.unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(RequestError::Bad {
            status: 413,
            msg: format!("body of {len} bytes exceeds limit {MAX_BODY_BYTES}"),
        });
    }
    let mut body = vec![0u8; len];
    stream
        .read_exact(&mut body)
        .map_err(|_| RequestError::Bad {
            status: 400,
            msg: "connection closed mid-body".into(),
        })?;
    Ok(body)
}

/// Reads one full HTTP/1.1 request (head + sized body). Returns
/// [`RequestError::Closed`] on clean EOF before any request byte.
pub fn read_request<S: Read>(stream: &mut S) -> Result<Request, RequestError> {
    let head = read_head(stream)?;
    let body = read_sized_body(stream, &head)?;
    Ok(Request {
        method: head.method,
        path: head.path,
        body,
        close: head.close,
        trace: head.trace,
    })
}

/// Why pulling bytes out of a [`BodyReader`] failed.
#[derive(Debug)]
pub enum BodyError {
    /// Socket-level failure (including idle-timeout expiry).
    Io(std::io::Error),
    /// The chunked framing is malformed or the body ended prematurely —
    /// the connection cannot be resynchronised and must close.
    Protocol(String),
    /// The body exceeded the reader's byte budget. Enforced on **every**
    /// consumed byte (framing overhead included), so even a body with no
    /// newlines at all cannot push past the budget.
    TooLarge {
        /// The configured budget.
        limit: usize,
    },
}

impl From<std::io::Error> for BodyError {
    fn from(e: std::io::Error) -> Self {
        BodyError::Io(e)
    }
}

impl std::fmt::Display for BodyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BodyError::Io(e) => write!(f, "I/O error: {e}"),
            BodyError::Protocol(msg) => write!(f, "{msg}"),
            BodyError::TooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte stream limit")
            }
        }
    }
}

/// Result of [`BodyReader::read_line`].
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// One line is in the buffer (terminator stripped).
    Line,
    /// The line exceeded the buffer bound; the remainder up to the next
    /// newline was consumed and discarded, so the stream is still in sync.
    TooLong,
    /// The body is exhausted (the buffer holds any final unterminated
    /// line — empty if none).
    End,
}

#[derive(Clone, Copy)]
enum Framing {
    /// `Content-Length` body: this many bytes remain.
    Sized(usize),
    /// Chunked body: bytes remaining in the current chunk (`None` before
    /// the first chunk header and after a chunk boundary).
    Chunked(Option<usize>),
    /// Terminal chunk seen / sized body exhausted.
    Done,
}

/// Incremental reader over one request body, decoding both framings under
/// a hard byte budget (checked per consumed byte — line structure cannot
/// bypass it).
pub struct BodyReader<'a, S: Read> {
    stream: &'a mut S,
    framing: Framing,
    consumed: usize,
    limit: usize,
}

impl<'a, S: Read> BodyReader<'a, S> {
    /// Wraps the connection stream for `head`'s body. At most `limit`
    /// body bytes (framing overhead included) will be consumed; the read
    /// crossing the budget fails with [`BodyError::TooLarge`].
    pub fn new(stream: &'a mut S, head: &RequestHead, limit: usize) -> Self {
        let framing = if head.chunked {
            Framing::Chunked(None)
        } else {
            match head.content_length.unwrap_or(0) {
                0 => Framing::Done,
                n => Framing::Sized(n),
            }
        };
        Self {
            stream,
            framing,
            consumed: 0,
            limit,
        }
    }

    /// Total body bytes consumed so far (chunk framing overhead included).
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Whether the body has been fully consumed (safe to keep the
    /// connection alive for the next request).
    pub fn finished(&self) -> bool {
        matches!(self.framing, Framing::Done)
    }

    fn read_raw_byte(&mut self) -> Result<u8, BodyError> {
        if self.consumed >= self.limit {
            return Err(BodyError::TooLarge { limit: self.limit });
        }
        let mut b = [0u8; 1];
        let got = self.stream.read(&mut b)?;
        if got == 0 {
            return Err(BodyError::Protocol("connection closed mid-body".into()));
        }
        self.consumed += 1;
        Ok(b[0])
    }

    /// Reads the `\r\n`-terminated chunk-size line (hex size, optional
    /// `;extensions` ignored).
    fn read_chunk_size(&mut self) -> Result<usize, BodyError> {
        let mut line = Vec::with_capacity(16);
        loop {
            let b = self.read_raw_byte()?;
            if b == b'\n' {
                break;
            }
            line.push(b);
            if line.len() > 128 {
                return Err(BodyError::Protocol("chunk size line too long".into()));
            }
        }
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        let text = std::str::from_utf8(&line)
            .map_err(|_| BodyError::Protocol("chunk size is not UTF-8".into()))?;
        let hex = text.split(';').next().unwrap_or("").trim();
        usize::from_str_radix(hex, 16)
            .map_err(|_| BodyError::Protocol(format!("bad chunk size {hex:?}")))
    }

    /// Consumes the CRLF that terminates each chunk's data.
    fn read_chunk_terminator(&mut self) -> Result<(), BodyError> {
        let cr = self.read_raw_byte()?;
        let lf = self.read_raw_byte()?;
        if cr != b'\r' || lf != b'\n' {
            return Err(BodyError::Protocol("missing chunk terminator".into()));
        }
        Ok(())
    }

    /// Consumes any trailer lines after the terminal chunk, through the
    /// final empty line.
    fn read_trailers(&mut self) -> Result<(), BodyError> {
        let mut line_len = 0usize;
        loop {
            let b = self.read_raw_byte()?;
            if b == b'\n' {
                if line_len == 0 {
                    return Ok(());
                }
                line_len = 0;
            } else if b != b'\r' {
                line_len += 1;
                if line_len > MAX_HEAD_BYTES {
                    return Err(BodyError::Protocol("trailer section too large".into()));
                }
            }
        }
    }

    /// The next body byte, or `None` at the end of the body.
    fn next_byte(&mut self) -> Result<Option<u8>, BodyError> {
        loop {
            match self.framing {
                Framing::Done => return Ok(None),
                Framing::Sized(remaining) => {
                    let b = self.read_raw_byte()?;
                    self.framing = if remaining == 1 {
                        Framing::Done
                    } else {
                        Framing::Sized(remaining - 1)
                    };
                    return Ok(Some(b));
                }
                Framing::Chunked(Some(remaining)) => {
                    let b = self.read_raw_byte()?;
                    if remaining == 1 {
                        self.read_chunk_terminator()?;
                        self.framing = Framing::Chunked(None);
                    } else {
                        self.framing = Framing::Chunked(Some(remaining - 1));
                    }
                    return Ok(Some(b));
                }
                Framing::Chunked(None) => {
                    let size = self.read_chunk_size()?;
                    if size == 0 {
                        self.read_trailers()?;
                        self.framing = Framing::Done;
                        return Ok(None);
                    }
                    self.framing = Framing::Chunked(Some(size));
                }
            }
        }
    }

    /// Reads the next `\n`-terminated line into `buf` (cleared first; the
    /// terminator and a preceding `\r` are stripped). A line longer than
    /// `max_line` is consumed to its end but **discarded**, keeping both the
    /// stream in sync and the buffer bounded.
    pub fn read_line(&mut self, buf: &mut Vec<u8>, max_line: usize) -> Result<LineRead, BodyError> {
        buf.clear();
        let mut discarding = false;
        loop {
            match self.next_byte()? {
                None => {
                    if discarding {
                        return Ok(LineRead::TooLong);
                    }
                    return Ok(LineRead::End);
                }
                Some(b'\n') => {
                    if discarding {
                        return Ok(LineRead::TooLong);
                    }
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return Ok(LineRead::Line);
                }
                Some(b) => {
                    if !discarding {
                        buf.push(b);
                        if buf.len() > max_line {
                            buf.clear();
                            discarding = true;
                        }
                    }
                }
            }
        }
    }
}

/// Writes one response with a JSON body and flushes the stream.
pub fn write_response<S: Write>(
    stream: &mut S,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", body, close)
}

/// [`write_response`] with an explicit `Content-Type` (the `/metrics`
/// endpoint answers Prometheus text exposition, everything else JSON).
pub fn write_response_typed<S: Write>(
    stream: &mut S,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    write_response_traced(stream, status, content_type, body, close, None)
}

/// [`write_response_typed`] with an optional `x-hics-trace` echo. With
/// `trace: None` the emitted bytes are **identical** to the untraced
/// writer — the wire contract with tracing disabled rides on that.
pub fn write_response_traced<S: Write>(
    stream: &mut S,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
    trace: Option<&str>,
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if close { "close" } else { "keep-alive" };
    let trace_line = match trace {
        Some(value) => format!("x-hics-trace: {value}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         {trace_line}\
         Connection: {connection}\r\n\
         \r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Starts a chunked (unknown-length) response: status line + headers. Each
/// payload piece then goes out via [`write_chunk`]; [`finish_chunked`]
/// terminates the body.
pub fn write_chunked_head<S: Write>(
    stream: &mut S,
    status: u16,
    content_type: &str,
    close: bool,
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\n\
         Connection: {connection}\r\n\
         \r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one non-empty chunk and flushes, so each streamed line reaches
/// the client immediately.
pub fn write_chunk<S: Write>(stream: &mut S, data: &[u8]) -> std::io::Result<()> {
    debug_assert!(!data.is_empty(), "an empty chunk would terminate the body");
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response body.
pub fn finish_chunked<S: Write>(stream: &mut S) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// The reason phrases for the statuses the service emits.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// Formats a JSON error body `{"error": "..."}`.
pub fn error_body(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len() + 12);
    out.push_str("{\"error\":");
    crate::json::escape_string(&mut out, msg);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
        assert!(!r.close);
    }

    #[test]
    fn parses_post_with_body_and_connection_close() {
        let r = parse(
            "POST /score HTTP/1.1\r\nContent-Length: 9\r\nConnection: close\r\n\r\n{\"p\":[1]}",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"p\":[1]}");
        assert!(r.close);
    }

    #[test]
    fn http10_defaults_to_close() {
        let r = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(r.close);
        let r = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!r.close);
    }

    #[test]
    fn clean_eof_reports_closed() {
        assert!(matches!(parse(""), Err(RequestError::Closed)));
    }

    #[test]
    fn malformed_inputs_get_4xx() {
        for (raw, want) in [
            ("nonsense\r\n\r\n", 400),
            ("GET /x HTTP/2.0\r\n\r\n", 505),
            ("GET /x HTTP/1.1\r\nContent-Length: zap\r\n\r\n", 400),
            (
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                411,
            ),
            ("GET x HTTP/1.1\r\n\r\n", 400),
            (
                "POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
                413,
            ),
        ] {
            match parse(raw) {
                Err(RequestError::Bad { status, .. }) => {
                    assert_eq!(status, want, "for {raw:?}")
                }
                other => panic!("{raw:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn head_reports_chunked_framing_without_consuming_the_body() {
        let raw =
            "POST /v2/score HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n";
        let mut cursor = Cursor::new(raw.as_bytes().to_vec());
        let head = read_head(&mut cursor).unwrap();
        assert!(head.chunked);
        assert_eq!(head.content_length, None);
        assert_eq!(cursor.position() as usize, raw.find("5\r\n").unwrap());
    }

    #[test]
    fn truncated_body_is_bad_request() {
        let r = parse("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort");
        assert!(matches!(r, Err(RequestError::Bad { status: 400, .. })));
    }

    #[test]
    fn response_has_content_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn trace_header_is_parsed_and_bad_values_ignored() {
        let r = parse(
            "POST /score HTTP/1.1\r\nx-hics-trace: 00000000000000ab-00000000000000cd\r\n\
             Content-Length: 0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.trace, Some((0xab, 0xcd)));
        let r = parse("POST /score HTTP/1.1\r\nX-Hics-Trace: junk\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        assert_eq!(r.trace, None, "malformed header is ignored, not fatal");
        let r = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.trace, None);
    }

    /// The traced writer with no trace must produce byte-identical output
    /// to the plain writer; with a trace it only inserts the echo line.
    #[test]
    fn traced_writer_is_byte_identical_without_a_trace() {
        let mut plain = Vec::new();
        write_response_typed(&mut plain, 200, "application/json", "{}", false).unwrap();
        let mut untraced = Vec::new();
        write_response_traced(&mut untraced, 200, "application/json", "{}", false, None).unwrap();
        assert_eq!(plain, untraced);

        let mut traced = Vec::new();
        write_response_traced(
            &mut traced,
            200,
            "application/json",
            "{}",
            false,
            Some("ab-cd"),
        )
        .unwrap();
        let text = String::from_utf8(traced).unwrap();
        assert!(text.contains("x-hics-trace: ab-cd\r\n"), "{text}");
        assert_eq!(
            text.replace("x-hics-trace: ab-cd\r\n", "").into_bytes(),
            plain
        );
    }

    #[test]
    fn error_body_is_json() {
        assert_eq!(
            error_body("bad \"thing\""),
            "{\"error\":\"bad \\\"thing\\\"\"}"
        );
    }

    fn lines_of(head: &RequestHead, body: &str, max_line: usize) -> (Vec<String>, Vec<LineRead>) {
        let mut cursor = Cursor::new(body.as_bytes().to_vec());
        let mut reader = BodyReader::new(&mut cursor, head, usize::MAX);
        let mut buf = Vec::new();
        let mut lines = Vec::new();
        let mut statuses = Vec::new();
        loop {
            let status = reader.read_line(&mut buf, max_line).unwrap();
            let is_end = status == LineRead::End;
            lines.push(String::from_utf8(buf.clone()).unwrap());
            statuses.push(status);
            if is_end {
                return (lines, statuses);
            }
        }
    }

    fn sized_head(len: usize) -> RequestHead {
        RequestHead {
            method: "POST".into(),
            path: "/v2/score".into(),
            content_length: Some(len),
            chunked: false,
            close: false,
            trace: None,
        }
    }

    fn chunked_head() -> RequestHead {
        RequestHead {
            method: "POST".into(),
            path: "/v2/score".into(),
            content_length: None,
            chunked: true,
            close: false,
            trace: None,
        }
    }

    #[test]
    fn body_reader_splits_sized_bodies_into_lines() {
        let body = "[1,2]\n[3,4]\r\n\n[5,6]";
        let (lines, statuses) = lines_of(&sized_head(body.len()), body, 1024);
        assert_eq!(lines, ["[1,2]", "[3,4]", "", "[5,6]"]);
        assert_eq!(statuses.last(), Some(&LineRead::End));
        // The final unterminated line arrives with End.
        assert_eq!(statuses.iter().filter(|s| **s == LineRead::Line).count(), 3);
    }

    #[test]
    fn body_reader_decodes_multi_chunk_bodies_across_line_boundaries() {
        // One NDJSON line split mid-number across three chunks, plus a
        // second line in the last chunk with extensions and trailers.
        let body =
            "4\r\n[1,2\r\n3;ext=1\r\n,3]\r\n8\r\n\n[4,5,6]\r\n1\r\n\n\r\n0\r\nTrailer: x\r\n\r\n";
        let (lines, _) = lines_of(&chunked_head(), body, 1024);
        assert_eq!(lines, ["[1,2,3]", "[4,5,6]", ""]);
    }

    /// A body with no newline at all must still hit the byte budget — the
    /// stream-level bound cannot be dodged by never terminating a line.
    #[test]
    fn body_reader_enforces_its_byte_budget_even_without_newlines() {
        let body = "x".repeat(256);
        let mut cursor = Cursor::new(body.as_bytes().to_vec());
        let head = sized_head(body.len());
        let mut reader = BodyReader::new(&mut cursor, &head, 64);
        let mut buf = Vec::new();
        // max_line far above the budget: the budget must fire first.
        match reader.read_line(&mut buf, 1 << 20) {
            Err(BodyError::TooLarge { limit: 64 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert!(reader.consumed() <= 64);
    }

    #[test]
    fn body_reader_bounds_line_length_but_keeps_the_stream_in_sync() {
        let body = "0123456789abcdef\nshort\n";
        let mut cursor = Cursor::new(body.as_bytes().to_vec());
        let head = sized_head(body.len());
        let mut reader = BodyReader::new(&mut cursor, &head, usize::MAX);
        let mut buf = Vec::new();
        assert!(matches!(
            reader.read_line(&mut buf, 8).unwrap(),
            LineRead::TooLong
        ));
        assert!(buf.len() <= 8, "buffer stayed bounded");
        assert!(matches!(
            reader.read_line(&mut buf, 8).unwrap(),
            LineRead::Line
        ));
        assert_eq!(buf, b"short");
        assert!(matches!(
            reader.read_line(&mut buf, 8).unwrap(),
            LineRead::End
        ));
        assert!(reader.finished());
    }

    #[test]
    fn body_reader_rejects_malformed_chunk_framing() {
        for body in ["zz\r\nhello\r\n", "5\r\nhelloXX", "5\r\nhel"] {
            let mut cursor = Cursor::new(body.as_bytes().to_vec());
            let head = chunked_head();
            let mut reader = BodyReader::new(&mut cursor, &head, usize::MAX);
            let mut buf = Vec::new();
            let mut failed = false;
            for _ in 0..8 {
                match reader.read_line(&mut buf, 64) {
                    Err(_) => {
                        failed = true;
                        break;
                    }
                    Ok(LineRead::End) => break,
                    Ok(_) => {}
                }
            }
            assert!(failed, "{body:?} was accepted");
        }
    }

    #[test]
    fn chunked_response_round_trips() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "application/x-ndjson", false).unwrap();
        write_chunk(&mut out, b"{\"score\":1}\n").unwrap();
        write_chunk(&mut out, b"{\"score\":2}\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("c\r\n{\"score\":1}\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
