//! Minimal HTTP/1.1 request parsing and response writing over blocking
//! streams — hand-rolled on `std::io`, no registry dependencies.
//!
//! Supports exactly what the scoring service needs: request line + headers +
//! `Content-Length` bodies, persistent connections (HTTP/1.1 keep-alive
//! semantics), and bounded header/body sizes so a hostile peer cannot make
//! the server buffer unbounded input. Chunked transfer encoding is not
//! accepted (`411 Length Required` tells clients to send a length).

use std::io::{Read, Write};

/// Upper bound on request head (request line + headers) bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on request body bytes (a 64 MB batch of points is far above
/// any sane scoring request).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query strings are not split off; the service
    /// has no query parameters).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`, or an HTTP/1.0 request without
    /// `keep-alive`).
    pub close: bool,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum RequestError {
    /// The connection closed cleanly before a new request started.
    Closed,
    /// Socket-level failure mid-request.
    Io(std::io::Error),
    /// The peer sent something that is not valid HTTP; the given status
    /// line + message should be returned before closing.
    Bad {
        /// HTTP status code to answer with.
        status: u16,
        /// Human-readable reason for the error body.
        msg: String,
    },
}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one HTTP/1.1 request from the stream. Returns
/// [`RequestError::Closed`] on clean EOF before any request byte.
pub fn read_request<S: Read>(stream: &mut S) -> Result<Request, RequestError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Read the head byte-by-byte until CRLFCRLF. Callers hand in a
    // `BufReader` that lives for the whole connection (see
    // `server::handle_connection`), so these reads are in-memory, not
    // per-byte syscalls, and over-read pipelined bytes are retained.
    loop {
        let got = stream.read(&mut byte)?;
        if got == 0 {
            if head.is_empty() {
                return Err(RequestError::Closed);
            }
            return Err(RequestError::Bad {
                status: 400,
                msg: "connection closed mid-request".into(),
            });
        }
        head.push(byte[0]);
        if head.len() > MAX_HEAD_BYTES {
            return Err(RequestError::Bad {
                status: 431,
                msg: "request head too large".into(),
            });
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| RequestError::Bad {
        status: 400,
        msg: "request head is not UTF-8".into(),
    })?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
            (m.to_string(), p.to_string(), v)
        }
        _ => {
            return Err(RequestError::Bad {
                status: 400,
                msg: format!("malformed request line {request_line:?}"),
            })
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RequestError::Bad {
            status: 505,
            msg: format!("unsupported protocol {version:?}"),
        });
    }

    let mut content_length: Option<usize> = None;
    let mut connection = String::new();
    let mut chunked = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Bad {
                status: 400,
                msg: format!("malformed header {line:?}"),
            });
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value.parse().map_err(|_| RequestError::Bad {
                    status: 400,
                    msg: format!("bad Content-Length {value:?}"),
                })?;
                content_length = Some(n);
            }
            "connection" => connection = value.to_ascii_lowercase(),
            "transfer-encoding" => chunked = value.to_ascii_lowercase().contains("chunked"),
            _ => {}
        }
    }
    if chunked {
        return Err(RequestError::Bad {
            status: 411,
            msg: "chunked bodies are not supported; send Content-Length".into(),
        });
    }
    let len = content_length.unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(RequestError::Bad {
            status: 413,
            msg: format!("body of {len} bytes exceeds limit {MAX_BODY_BYTES}"),
        });
    }
    let mut body = vec![0u8; len];
    stream
        .read_exact(&mut body)
        .map_err(|_| RequestError::Bad {
            status: 400,
            msg: "connection closed mid-body".into(),
        })?;

    let close = match version {
        "HTTP/1.0" => connection != "keep-alive",
        _ => connection == "close",
    };
    Ok(Request {
        method,
        path,
        body,
        close,
    })
}

/// Writes one response with a JSON body and flushes the stream.
pub fn write_response<S: Write>(
    stream: &mut S,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: {connection}\r\n\
         \r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The reason phrases for the statuses the service emits.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// Formats a JSON error body `{"error": "..."}`.
pub fn error_body(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len() + 12);
    out.push_str("{\"error\":");
    crate::json::escape_string(&mut out, msg);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
        assert!(!r.close);
    }

    #[test]
    fn parses_post_with_body_and_connection_close() {
        let r = parse(
            "POST /score HTTP/1.1\r\nContent-Length: 9\r\nConnection: close\r\n\r\n{\"p\":[1]}",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"p\":[1]}");
        assert!(r.close);
    }

    #[test]
    fn http10_defaults_to_close() {
        let r = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(r.close);
        let r = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!r.close);
    }

    #[test]
    fn clean_eof_reports_closed() {
        assert!(matches!(parse(""), Err(RequestError::Closed)));
    }

    #[test]
    fn malformed_inputs_get_4xx() {
        for (raw, want) in [
            ("nonsense\r\n\r\n", 400),
            ("GET /x HTTP/2.0\r\n\r\n", 505),
            ("GET /x HTTP/1.1\r\nContent-Length: zap\r\n\r\n", 400),
            (
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                411,
            ),
            ("GET x HTTP/1.1\r\n\r\n", 400),
            (
                "POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
                413,
            ),
        ] {
            match parse(raw) {
                Err(RequestError::Bad { status, .. }) => {
                    assert_eq!(status, want, "for {raw:?}")
                }
                other => panic!("{raw:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_body_is_bad_request() {
        let r = parse("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort");
        assert!(matches!(r, Err(RequestError::Bad { status: 400, .. })));
    }

    #[test]
    fn response_has_content_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_body_is_json() {
        assert_eq!(
            error_body("bad \"thing\""),
            "{\"error\":\"bad \\\"thing\\\"\"}"
        );
    }
}
