//! The server's shared instrument registry.
//!
//! One [`ServeMetrics`] per [`crate::server::Server`] owns the
//! [`Registry`] every subsystem records into: the batcher's counters and
//! size/latency histograms, the stream and connection counters, per-stage
//! request latency, per-reactor I/O counters, the scoring-path shard
//! recorder and the fit-pipeline counter family. `/stats` and `/metrics`
//! are two renderings of this one registry — there is no other
//! bookkeeping.

use crate::server::{LogFormat, ServeConfig};
use hics_obs::{Counter, Histogram, Registry, Timeline, STAGES, STAGE_COUNT};
use std::sync::Arc;

/// Latency histograms resolve nanoseconds up to ~68 s with `2^-5`
/// relative error (~9 KB per histogram).
const LATENCY_SUB_BITS: u32 = 5;
const LATENCY_MAX_NS: u64 = 1 << 36;
const NANOS_TO_SECONDS: f64 = 1e-9;

/// Content type of the Prometheus text exposition format.
pub(crate) const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// The content type a `dispatch` response body carries on the wire:
/// everything is JSON except a successful `/metrics` scrape.
pub(crate) fn content_type_for(path: &str, status: u16) -> &'static str {
    if status == 200 && path == "/metrics" {
        METRICS_CONTENT_TYPE
    } else {
        "application/json"
    }
}

/// Registry-backed instruments shared by every part of one server.
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    /// The single source of truth behind `/stats` and `/metrics`.
    pub(crate) registry: Arc<Registry>,
    /// Per-stage request latency, indexed by `Stage as usize`.
    pub(crate) stage: [Arc<Histogram>; STAGE_COUNT],
    /// Whole-request latency (first byte to response flushed).
    pub(crate) request_seconds: Arc<Histogram>,
    /// Writes paused because a connection hit the output high-water mark.
    pub(crate) backpressure_stalls: Arc<Counter>,
}

/// Per-reactor I/O counters (labeled `reactor="<id>"`).
#[derive(Debug)]
pub(crate) struct ReactorMetrics {
    /// `epoll_wait` returns.
    pub(crate) wakeups: Arc<Counter>,
    /// Batch completions delivered through the eventfd notifier.
    pub(crate) completions: Arc<Counter>,
    /// Bytes read off sockets.
    pub(crate) bytes_in: Arc<Counter>,
    /// Bytes flushed to sockets.
    pub(crate) bytes_out: Arc<Counter>,
}

impl ServeMetrics {
    /// A self-contained instrument set over a private registry (tests).
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// Builds the server instruments inside a caller-owned registry, so an
    /// embedder (e.g. the scatter-gather router) can surface its own
    /// instrument families on the same `/metrics` scrape.
    pub(crate) fn with_registry(registry: Arc<Registry>) -> Self {
        let stage = STAGES.map(|(_, name)| {
            registry.histogram_with(
                "hics_request_stage_seconds",
                "Request latency per lifecycle stage.",
                vec![("stage", name.to_string())],
                LATENCY_SUB_BITS,
                LATENCY_MAX_NS,
                NANOS_TO_SECONDS,
            )
        });
        let request_seconds = registry.histogram(
            "hics_request_seconds",
            "Whole-request latency, first byte to flushed response.",
            LATENCY_SUB_BITS,
            LATENCY_MAX_NS,
            NANOS_TO_SECONDS,
        );
        let backpressure_stalls = registry.counter(
            "hics_backpressure_stalls_total",
            "Connections paused at the output high-water mark.",
        );
        // Fleet bookkeeping: which build answers this scrape, and since
        // when. The router registers its own `crate` label variant, so a
        // routed tier's scrape names both crates.
        registry
            .gauge_with(
                "hics_build_info",
                "Build metadata; the value is always 1.",
                vec![
                    ("version", env!("CARGO_PKG_VERSION").to_string()),
                    ("crate", "hics-serve".to_string()),
                ],
            )
            .set(1);
        registry
            .gauge(
                "hics_process_start_seconds",
                "Unix time this process registered its instruments.",
            )
            .set(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs() as i64)
                    .unwrap_or(0),
            );
        // The fit counter family is registered (zero-valued while purely
        // serving) so one scrape config covers fits driven in-process.
        let _ = hics_core::FitMetrics::register(&registry);
        Self {
            registry,
            stage,
            request_seconds,
            backpressure_stalls,
        }
    }

    /// The labeled counter set for reactor `id` (0 = the main thread; the
    /// blocking fallback reports all its traffic as reactor 0).
    pub(crate) fn reactor(&self, id: usize) -> Arc<ReactorMetrics> {
        let labels = || vec![("reactor", id.to_string())];
        Arc::new(ReactorMetrics {
            wakeups: self.registry.counter_with(
                "hics_reactor_wakeups_total",
                "epoll_wait returns per reactor.",
                labels(),
            ),
            completions: self.registry.counter_with(
                "hics_reactor_completions_total",
                "Batch completions delivered via eventfd per reactor.",
                labels(),
            ),
            bytes_in: self.registry.counter_with(
                "hics_reactor_bytes_in_total",
                "Bytes read off sockets per reactor.",
                labels(),
            ),
            bytes_out: self.registry.counter_with(
                "hics_reactor_bytes_out_total",
                "Bytes flushed to sockets per reactor.",
                labels(),
            ),
        })
    }

    /// Folds one finished request timeline into the stage histograms and,
    /// when it crosses the configured slow-query threshold, logs the full
    /// stage breakdown to stderr. Resets the timeline for keep-alive reuse.
    pub(crate) fn observe_request(
        &self,
        config: &ServeConfig,
        path: &str,
        timeline: &mut Timeline,
        trace_id: Option<u64>,
    ) {
        if !timeline.is_started() {
            return;
        }
        for (stage, _) in STAGES {
            if let Some(ns) = timeline.stage_ns(stage) {
                self.stage[stage as usize].record(ns);
            }
        }
        let total_ns = timeline.total_ns();
        self.request_seconds.record(total_ns);
        if let Some(threshold) = config.slow_query {
            if u128::from(total_ns) >= threshold.as_nanos() {
                log_slow_query(config.log_format, path, timeline, total_ns, trace_id);
            }
        }
        timeline.reset();
    }
}

/// One stderr line per slow request, with the full stage timeline. The
/// trace id (when tracing is on) cross-references the log line with
/// `GET /trace/<id>` — slow requests are always retained there.
fn log_slow_query(
    format: LogFormat,
    path: &str,
    timeline: &Timeline,
    total_ns: u64,
    trace_id: Option<u64>,
) {
    match format {
        LogFormat::Json => {
            let mut out = String::with_capacity(192);
            out.push_str("{\"event\":\"slow_query\",\"path\":");
            crate::json::escape_string(&mut out, path);
            if let Some(id) = trace_id {
                out.push_str(",\"trace_id\":\"");
                out.push_str(&hics_obs::trace::format_id(id));
                out.push('"');
            }
            out.push_str(&format!(",\"total_us\":{}", total_ns / 1_000));
            out.push_str(",\"stages_us\":{");
            let mut first = true;
            for (stage, name) in STAGES {
                if let Some(ns) = timeline.stage_ns(stage) {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("\"{name}\":{}", ns / 1_000));
                }
            }
            out.push_str("}}");
            eprintln!("{out}");
        }
        LogFormat::Text => {
            let stages: Vec<String> = STAGES
                .iter()
                .filter_map(|&(stage, name)| {
                    timeline
                        .stage_ns(stage)
                        .map(|ns| format!("{name}={}us", ns / 1_000))
                })
                .collect();
            let trace = trace_id
                .map(|id| format!(" trace={}", hics_obs::trace::format_id(id)))
                .unwrap_or_default();
            eprintln!(
                "slow query {path}:{trace} total={}us {}",
                total_ns / 1_000,
                stages.join(" ")
            );
        }
    }
}

/// The [`hics_outlier::ScoreRecorder`] wired into a server's registry:
/// per-shard score latency plus the neighbour-index query counter.
#[derive(Debug)]
pub(crate) struct EngineRecorder {
    registry: Arc<Registry>,
    index_queries: Arc<Counter>,
}

impl EngineRecorder {
    pub(crate) fn new(registry: &Arc<Registry>) -> Self {
        Self {
            registry: Arc::clone(registry),
            index_queries: registry.counter(
                "hics_index_queries_total",
                "Neighbour-index point queries (one per subspace per scored row).",
            ),
        }
    }
}

impl hics_outlier::ScoreRecorder for EngineRecorder {
    fn shard_scored(&self, shard: usize, rows: usize, nanos: u64) {
        self.registry
            .histogram_with(
                "hics_shard_score_seconds",
                "Batch score latency per shard.",
                vec![("shard", shard.to_string())],
                LATENCY_SUB_BITS,
                LATENCY_MAX_NS,
                NANOS_TO_SECONDS,
            )
            .record(nanos);
        self.registry
            .counter_with(
                "hics_shard_rows_total",
                "Rows scored per shard.",
                vec![("shard", shard.to_string())],
            )
            .add(rows as u64);
    }

    fn index_queries(&self, n: u64) {
        self.index_queries.add(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hics_obs::Stage;
    use std::time::Duration;

    #[test]
    fn observe_request_records_marked_stages_and_resets() {
        let m = ServeMetrics::new();
        let config = ServeConfig::default();
        let mut t = Timeline::new();
        t.start();
        t.mark(Stage::HeadParse);
        t.mark(Stage::Body);
        t.mark(Stage::Flush);
        m.observe_request(&config, "/score", &mut t, None);
        assert!(!t.is_started(), "timeline reset for keep-alive reuse");
        assert_eq!(m.request_seconds.count(), 1);
        assert_eq!(m.stage[Stage::HeadParse as usize].count(), 1);
        assert_eq!(m.stage[Stage::Body as usize].count(), 1);
        assert_eq!(m.stage[Stage::Enqueue as usize].count(), 0, "unmarked");
        assert_eq!(m.stage[Stage::Flush as usize].count(), 1);
        // Unstarted timelines (e.g. instrumentation off) are ignored.
        m.observe_request(&config, "/score", &mut t, None);
        assert_eq!(m.request_seconds.count(), 1);
    }

    #[test]
    fn slow_query_threshold_gates_on_total() {
        let m = ServeMetrics::new();
        let config = ServeConfig {
            slow_query: Some(Duration::from_secs(3600)),
            ..ServeConfig::default()
        };
        let mut t = Timeline::new();
        t.start();
        t.mark(Stage::Flush);
        // Far below threshold: must not log (nothing observable here beyond
        // not panicking) but still records.
        m.observe_request(&config, "/healthz", &mut t, None);
        assert_eq!(m.request_seconds.count(), 1);
    }

    #[test]
    fn reactor_counters_are_labeled_per_reactor() {
        let m = ServeMetrics::new();
        let r0 = m.reactor(0);
        let r1 = m.reactor(1);
        r0.bytes_in.add(10);
        r1.bytes_in.add(20);
        let text = m.registry.render_prometheus();
        assert!(
            text.contains("hics_reactor_bytes_in_total{reactor=\"0\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("hics_reactor_bytes_in_total{reactor=\"1\"} 20"),
            "{text}"
        );
    }

    #[test]
    fn metrics_content_type_only_for_successful_scrapes() {
        assert_eq!(content_type_for("/metrics", 200), METRICS_CONTENT_TYPE);
        assert_eq!(content_type_for("/metrics", 405), "application/json");
        assert_eq!(content_type_for("/stats", 200), "application/json");
    }
}
