//! # hics-serve — batched HTTP scoring over trained HiCS models
//!
//! The serving layer of the train-once/serve-many pipeline:
//!
//! * [`json`] — hand-rolled JSON parsing/serialisation (no registry deps).
//! * [`http`] — minimal HTTP/1.1 request/response over blocking streams.
//! * [`batch`] — the cross-connection request batcher: concurrent requests
//!   coalesce into contiguous scoring batches, resolved through the shared
//!   [`hics_outlier::EngineHandle`] so models hot-swap at batch boundaries.
//! * [`client`] — client-side keep-alive connections and per-address
//!   pools (the transport under the `hics route` scatter-gather tier).
//! * [`server`] — the `TcpListener` accept loop, connection handlers, and
//!   the `/score`, `/v2/score` (streaming NDJSON), `/admin/reload`,
//!   `/healthz`, `/model`, `/stats`, `/metrics` endpoints.
//!
//! Every counter, gauge and latency histogram the server keeps lives in one
//! shared [`hics_obs::Registry`]: `/stats` renders its legacy JSON from it
//! and `/metrics` renders the same instruments in Prometheus text
//! exposition, with per-request stage timelines (head parse → body →
//! enqueue → score → flush) recorded against a monotonic clock.
//!
//! ```no_run
//! use hics_outlier::QueryEngine;
//! use hics_serve::{ServeConfig, Server};
//! use std::sync::Arc;
//!
//! // Zero-copy: the engine scores straight out of the mapped artifact.
//! let artifact = hics_data::ModelArtifact::open_mmap(std::path::Path::new("model.hics")).unwrap();
//! let engine = QueryEngine::from_artifact(Arc::new(artifact), None, 8);
//! let server = Server::bind(engine, ServeConfig::default()).unwrap();
//! server.set_reload_source("model.hics".into(), None);
//! println!("listening on {}", server.local_addr().unwrap());
//! server.run().unwrap();
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod client;
#[cfg(target_os = "linux")]
mod conn;
pub mod http;
pub mod json;
mod metrics;
#[cfg(target_os = "linux")]
mod reactor;
pub mod server;

pub use batch::{BatchScores, BatchStats, Batcher};
pub use client::{format_points_body, ClientConn, Pool, Response};
pub use json::Json;
pub use server::{ConnStats, LogFormat, ServeConfig, Server, ShutdownHandle, StreamStats};
