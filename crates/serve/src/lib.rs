//! # hics-serve — batched HTTP scoring over trained HiCS models
//!
//! The serving layer of the train-once/serve-many pipeline:
//!
//! * [`json`] — hand-rolled JSON parsing/serialisation (no registry deps).
//! * [`http`] — minimal HTTP/1.1 request/response over blocking streams.
//! * [`batch`] — the cross-connection request batcher: concurrent requests
//!   coalesce into contiguous scoring batches.
//! * [`server`] — the `TcpListener` accept loop, connection handlers, and
//!   the `/score`, `/healthz`, `/model`, `/stats` endpoints.
//!
//! ```no_run
//! use hics_outlier::QueryEngine;
//! use hics_serve::{ServeConfig, Server};
//!
//! let model = hics_data::HicsModel::load(std::path::Path::new("model.hics")).unwrap();
//! let engine = QueryEngine::from_model(&model, 8);
//! let server = Server::bind(engine, ServeConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr().unwrap());
//! server.run().unwrap();
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod http;
pub mod json;
pub mod server;

pub use batch::{BatchStats, Batcher};
pub use json::Json;
pub use server::{ServeConfig, Server, ShutdownHandle};
