//! Hand-rolled JSON — exactly what the scoring endpoints need, and nothing
//! more (the workspace builds offline; no serde).
//!
//! * [`Json`] — a parsed JSON value tree.
//! * [`parse`] — a recursive-descent parser (UTF-8 input, `\uXXXX` escapes,
//!   nesting-depth and token limits so hostile bodies cannot blow the
//!   stack).
//! * [`write_f64`] / [`escape_string`] — the serialisation helpers the
//!   response writers use. Scores are finite by construction; a non-finite
//!   `f64` serialises as `null`, which is the only JSON-representable
//!   choice.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. `BTreeMap` keeps serialisation deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value of an object member, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

/// A JSON syntax error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf-8 input");
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.bytes.len() - self.pos < 4 {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Writes an `f64` as JSON: shortest round-trip representation for finite
/// values, `null` for NaN/±∞ (JSON has no non-finite numbers).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's `{}` prints the shortest string that parses back exactly.
        let _ = write!(out, "{v}");
        // `{}` omits the decimal point for integral values; keep it a JSON
        // number either way (it already is), nothing to fix up.
    } else {
        out.push_str("null");
    }
}

/// Appends a JSON string literal (quotes + escapes) for `s`.
pub fn escape_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("3.5").unwrap(), Json::Number(3.5));
        assert_eq!(parse("-1e3").unwrap(), Json::Number(-1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"points": [[1, 2.5], [3, -4]], "tag": "q"}"#).unwrap();
        let points = v.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("tag").unwrap(), &Json::String("q".into()));
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap(),
            Json::String("a\n\t\"\\Aé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::String("😀".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "[1] x",
            "\"\\q\"",
            "\"\u{1}\"",
            "nul",
            "--1",
            "[01x]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn f64_roundtrips_through_text() {
        for v in [0.0, -1.5, 1.0 / 3.0, 6.02e23, f64::MIN_POSITIVE] {
            let mut s = String::new();
            write_f64(&mut s, v);
            assert_eq!(parse(&s).unwrap().as_f64(), Some(v));
        }
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn string_escaping_roundtrips() {
        let original = "line\nbreak \"quoted\" back\\slash \u{1} tab\t";
        let mut s = String::new();
        escape_string(&mut s, original);
        assert_eq!(parse(&s).unwrap(), Json::String(original.into()));
    }
}
