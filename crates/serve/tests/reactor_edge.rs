//! Adversarial-client edge cases for the non-blocking serving core: a
//! slow-loris head, a mid-chunked-body stall, a client that stops reading
//! until the server's send buffer fills (backpressure, not data loss), an
//! abrupt disconnect while a batch is in flight, and a hot reload racing a
//! crowd of live connections.

use hics_core::{FitBuilder, HicsParams};
use hics_data::model::NormKind;
use hics_data::{HicsModel, SyntheticConfig};
use hics_outlier::QueryEngine;
use hics_serve::{ServeConfig, Server, ShutdownHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct RunningServer {
    addr: std::net::SocketAddr,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<()>,
}

impl RunningServer {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread");
    }
}

fn start_server(engine: QueryEngine, config: ServeConfig) -> RunningServer {
    let server = Server::bind(engine, config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    RunningServer {
        addr,
        handle,
        thread,
    }
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        max_batch: 64,
        workers: 1,
        keep_alive: Duration::from_secs(1),
        stream_idle: Duration::from_secs(1),
        max_connections: 256,
        ..ServeConfig::default()
    }
}

fn fit_model(seed: u64) -> (HicsModel, hics_data::LabeledDataset) {
    let g = SyntheticConfig::new(120, 5).with_seed(seed).generate();
    let mut p = HicsParams::paper_defaults().with_seed(seed);
    p.search.m = 15;
    p.search.candidate_cutoff = 25;
    p.search.top_k = 8;
    p.lof_k = 6;
    let model = FitBuilder::new(p)
        .normalize(NormKind::MinMax)
        .fit(&g.dataset);
    (model, g)
}

fn fit_engine(seed: u64) -> (QueryEngine, hics_data::LabeledDataset) {
    let (model, g) = fit_model(seed);
    (QueryEngine::from_model(&model, 1), g)
}

/// Reads status code and body of one HTTP/1.1 response (Content-Length
/// framing).
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read head");
        assert!(n > 0, "connection closed mid-head");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf).expect("utf-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_owned)
        })
        .expect("content-length header")
        .trim()
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// A half-sent request head must not hold its connection forever: after
/// `keep_alive` of silence the server closes it — without writing anything,
/// exactly like the blocking handler's read timeout did.
#[test]
fn slow_loris_head_is_disconnected_after_keep_alive() {
    let (engine, _) = fit_engine(71);
    let server = start_server(engine, quick_config());

    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A head that never finishes: no blank line, then silence.
    stream
        .write_all(b"POST /score HTTP/1.1\r\nHost: t\r\n")
        .expect("send partial head");
    let started = Instant::now();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read until close");
    let waited = started.elapsed();
    assert!(buf.is_empty(), "silent close expected, got {buf:?}");
    assert!(
        waited >= Duration::from_millis(800),
        "closed too early: {waited:?}"
    );
    assert!(waited < Duration::from_secs(8), "not closed: {waited:?}");
    server.stop();
}

/// A `/v2/score` stream that stalls mid-chunked-body gets the idle error
/// reported **in-stream** (with correct chunked framing and the final
/// terminator) and the connection is then closed.
#[test]
fn stalled_chunked_stream_gets_in_stream_idle_error_then_close() {
    let (engine, g) = fit_engine(72);
    let server = start_server(engine, quick_config());

    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /v2/score HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n")
        .expect("send head");
    // One complete line in one chunk, then stall without the 0-chunk.
    let row = g.dataset.row(3);
    let line = format!(
        "[{}]\n",
        row.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
    );
    stream
        .write_all(format!("{:x}\r\n{line}\r\n", line.len()).as_bytes())
        .expect("send chunk");

    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut l = String::new();
        reader.read_line(&mut l).expect("head line");
        if l == "\r\n" {
            break;
        }
        head.push_str(&l);
    }
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    // Everything after the head until the server gives up on us.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read until close");
    assert!(rest.contains("{\"score\":"), "line 1 was scored: {rest}");
    assert!(
        rest.contains("stream idle for more than"),
        "idle error reported in-stream: {rest}"
    );
    assert!(rest.contains("\"line\":1"), "{rest}");
    assert!(
        rest.ends_with("0\r\n\r\n"),
        "stream terminated with the final chunk: {rest:?}"
    );
    server.stop();
}

/// A streaming client that floods lines while reading nothing fills the
/// server's outbound buffer past the high-water mark. The server must stop
/// *reading* (backpressure), not drop scores: once the client drains, every
/// single line has a response.
#[test]
fn backpressure_on_a_non_reading_client_loses_no_lines() {
    let (engine, g) = fit_engine(73);
    let mut config = quick_config();
    config.stream_idle = Duration::from_secs(8);
    // Tiny high-water so the test trips backpressure with modest volume.
    config.high_water = 4 * 1024;
    let server = start_server(engine, config);

    const LINES: usize = 2000;
    let row = g.dataset.row(5);
    let line = format!(
        "[{}]\n",
        row.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
    );
    let body = line.repeat(LINES);

    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clone socket");
    let head = format!(
        "POST /v2/score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // Writer pumps the whole body from its own thread (it will block once
    // the server pauses reads); the main thread plays the slow consumer.
    let pump = std::thread::spawn(move || {
        writer.write_all(head.as_bytes()).expect("send head");
        writer.write_all(body.as_bytes()).expect("send body");
    });
    // Give the flood time to hit the high-water mark before draining.
    std::thread::sleep(Duration::from_millis(300));
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("drain responses");
    pump.join().expect("writer thread");

    let scored = raw.matches("{\"score\":").count();
    assert_eq!(scored, LINES, "every line must be scored exactly once");
    assert!(!raw.contains("\"error\""), "no error lines expected: {raw}");
    assert!(raw.ends_with("0\r\n\r\n"), "clean stream end");
    server.stop();
}

/// Clients that vanish mid-request — after a full request whose batch is in
/// flight, or mid-body — must not wedge the reactor, leak slots, or
/// misdeliver the orphaned batch completion to a later connection.
#[test]
fn abrupt_disconnects_mid_batch_do_not_poison_the_server() {
    let (engine, g) = fit_engine(74);
    let reference = engine.clone();
    let server = start_server(engine, quick_config());
    let row = g.dataset.row(7);
    let json = format!(
        "{{\"point\": [{}]}}",
        row.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
    );

    for i in 0..10 {
        // Full request, then hang up before the batch completes.
        let mut stream = TcpStream::connect(server.addr).expect("connect");
        let request = format!(
            "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{json}",
            json.len()
        );
        stream.write_all(request.as_bytes()).expect("send");
        drop(stream);

        // Half a body, then hang up.
        let mut stream = TcpStream::connect(server.addr).expect("connect");
        let request = format!(
            "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            json.len(),
            &json[..json.len() / 2]
        );
        stream.write_all(request.as_bytes()).expect("send");
        drop(stream);

        // The server keeps answering correctly in between.
        let mut stream = TcpStream::connect(server.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let request = format!(
            "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{json}",
            json.len()
        );
        stream.write_all(request.as_bytes()).expect("send");
        let (status, body) = read_response(&mut stream);
        assert_eq!(status, 200, "round {i}: {body}");
        let got: f64 = body
            .split(':')
            .nth(1)
            .and_then(|s| s.split('}').next())
            .expect("score field")
            .trim()
            .parse()
            .expect("numeric score");
        assert_eq!(got, reference.score(&row).expect("valid row"), "round {i}");
    }
    server.stop();
}

/// A hot reload firing while dozens of keep-alive connections score must
/// never produce a non-200, a malformed body, or a non-finite score — every
/// request is served by whichever engine generation it raced into.
#[test]
fn hot_reload_races_many_live_connections() {
    let (model_a, g) = fit_model(75);
    let (model_b, _) = fit_model(76);
    let dir = std::env::temp_dir().join("hics-reactor-edge-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path_a: PathBuf = dir.join("a.hics");
    let path_b: PathBuf = dir.join("b.hics");
    model_a.save(&path_a).expect("save a");
    model_b.save(&path_b).expect("save b");

    let mut config = quick_config();
    config.keep_alive = Duration::from_secs(10);
    let server = start_server(QueryEngine::from_model(&model_a, 1), config);
    let addr = server.addr;

    const CLIENTS: usize = 16;
    const ROUNDS: usize = 20;
    let mut clients = Vec::new();
    for t in 0..CLIENTS {
        let row = g.dataset.row((t * 11) % g.dataset.n());
        clients.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(15)))
                .unwrap();
            let json = format!(
                "{{\"point\": [{}]}}",
                row.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
            );
            let request = format!(
                "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{json}",
                json.len()
            );
            for round in 0..ROUNDS {
                stream.write_all(request.as_bytes()).expect("send");
                let (status, body) = read_response(&mut stream);
                assert_eq!(status, 200, "client {t} round {round}: {body}");
                let got: f64 = body
                    .split(':')
                    .nth(1)
                    .and_then(|s| s.split('}').next())
                    .expect("score field")
                    .trim()
                    .parse()
                    .expect("numeric score");
                assert!(got.is_finite(), "client {t} round {round}: {got}");
            }
        }));
    }

    // Meanwhile: flip the model back and forth under the load.
    for path in [&path_b, &path_a, &path_b, &path_a] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(15)))
            .unwrap();
        let json = format!("{{\"model\": \"{}\"}}", path.display());
        let request = format!(
            "POST /admin/reload HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{json}",
            json.len()
        );
        stream.write_all(request.as_bytes()).expect("send reload");
        let (status, body) = read_response(&mut stream);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"reloaded\""), "{body}");
        std::thread::sleep(Duration::from_millis(30));
    }

    for c in clients {
        c.join().expect("client thread");
    }

    // The stats endpoint reconciles: every request was counted.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send stats");
    let (status, stats) = read_response(&mut stream);
    assert_eq!(status, 200);
    let expected = format!("\"requests\":{}", CLIENTS * ROUNDS);
    assert!(stats.contains(&expected), "{stats}");
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}
