//! End-to-end observability: drive a live server over real TCP and check
//! that `/metrics` serves Prometheus text exposition whose counters exactly
//! reconcile with the traffic sent, that `/stats` and `/metrics` agree
//! (they render the same registry), and that turning instrumentation off
//! leaves every wire response byte-identical.

use hics_data::model::{
    apply_normalization, AggregationKind, HicsModel, ModelSubspace, NormKind, ScorerKind,
    ScorerSpec,
};
use hics_data::SyntheticConfig;
use hics_outlier::QueryEngine;
use hics_serve::{ServeConfig, Server, ShutdownHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

struct RunningServer {
    addr: std::net::SocketAddr,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<()>,
}

impl RunningServer {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread");
    }
}

fn engine() -> QueryEngine {
    let g = SyntheticConfig::new(80, 3).with_seed(11).generate();
    let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
    let model = HicsModel::new(
        data,
        NormKind::None,
        norm,
        vec![ModelSubspace {
            dims: vec![0, 2],
            contrast: 0.6,
        }],
        ScorerSpec {
            kind: ScorerKind::KnnMean,
            k: 4,
        },
        AggregationKind::Average,
    );
    QueryEngine::from_model(&model, 1)
}

fn start_server(config: ServeConfig) -> RunningServer {
    let server = Server::bind(engine(), config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    RunningServer {
        addr,
        handle,
        thread,
    }
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        max_batch: 16,
        workers: 1,
        keep_alive: Duration::from_secs(5),
        max_connections: 16,
        ..ServeConfig::default()
    }
}

/// One full HTTP/1.1 exchange on a fresh connection; returns status,
/// headers and body (Content-Length framing).
fn exchange(addr: std::net::SocketAddr, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read head");
        assert!(n > 0, "connection closed mid-head");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf).expect("utf-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_owned)
        })
        .expect("content-length header")
        .trim()
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    (status, head, String::from_utf8(body).expect("utf-8 body"))
}

fn post_score(addr: std::net::SocketAddr, json_body: &str) -> (u16, String, String) {
    let request = format!(
        "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        json_body.len(),
        json_body
    );
    exchange(addr, &request)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

/// The value of a single-line metric (no labels) in exposition text.
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} not in exposition:\n{text}"))
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not an integer"))
}

#[test]
fn metrics_reconcile_with_traffic_and_match_stats() {
    let server = start_server(test_config());

    const N: u64 = 7;
    let mut rows = 0u64;
    for i in 0..N {
        let body = if i % 2 == 0 {
            rows += 1;
            r#"{"point": [0.5, 0.5, 0.5]}"#.to_string()
        } else {
            rows += 2;
            r#"{"points": [[0.1, 0.2, 0.3], [0.9, 0.8, 0.7]]}"#.to_string()
        };
        let (status, _, reply) = post_score(server.addr, &body);
        assert_eq!(status, 200, "{reply}");
    }

    // One short NDJSON stream: 2 scored lines, 1 in-stream error.
    {
        let mut stream = TcpStream::connect(server.addr).expect("connect");
        let body = "[0.1,0.2,0.3]\n[0.4,0.5,0.6]\nnot json\n";
        let request = format!(
            "POST /v2/score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        );
        stream.write_all(request.as_bytes()).expect("send stream");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read stream");
        assert_eq!(out.matches("{\"score\":").count(), 2, "{out}");
        assert_eq!(out.matches("\"error\":").count(), 1, "{out}");
    }

    let (status, head, text) = get(server.addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "{head}"
    );

    // Exact reconciliation: every scoring request and row is accounted for.
    assert_eq!(metric_value(&text, "hics_requests_total"), N);
    assert_eq!(metric_value(&text, "hics_rows_total"), rows);
    assert_eq!(metric_value(&text, "hics_streams_total"), 1);
    assert_eq!(metric_value(&text, "hics_stream_lines_total"), 2);
    assert_eq!(metric_value(&text, "hics_stream_errors_total"), 1);
    assert_eq!(metric_value(&text, "hics_batch_size_count"), N);
    assert!(metric_value(&text, "hics_connections_accepted_total") > N);
    // The engine recorder is a process-global hook (last server wins), so
    // with other tests' servers alive only its presence is asserted here.
    assert!(text.contains("# TYPE hics_index_queries_total counter"));

    // The stage histograms carry quantile lines for every lifecycle stage.
    for stage in ["head_parse", "body", "enqueue", "score", "flush"] {
        assert!(
            text.contains(&format!(
                "hics_request_stage_seconds{{stage=\"{stage}\",quantile=\"0.999\"}}"
            )),
            "missing stage {stage}:\n{text}"
        );
    }
    assert!(
        metric_value(&text, "hics_request_seconds_count") >= N,
        "{text}"
    );

    // Reactor byte accounting is live on both serving paths (the epoll
    // reactors report per-reactor; the blocking fallback reports all its
    // traffic as reactor 0): after real traffic, the summed labeled
    // series must be non-zero in both directions.
    for direction in [
        "hics_reactor_bytes_in_total",
        "hics_reactor_bytes_out_total",
    ] {
        let total: u64 = text
            .lines()
            .filter(|l| l.starts_with(&format!("{direction}{{")))
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| panic!("unparsable series: {l}"))
            })
            .sum();
        assert!(total > 0, "{direction} recorded no traffic:\n{text}");
    }

    // `/stats` is a rendering of the same registry: its counters agree.
    let (status, _, stats) = get(server.addr, "/stats");
    assert_eq!(status, 200);
    assert!(stats.contains(&format!("\"requests\":{N}")), "{stats}");
    assert!(stats.contains(&format!("\"rows\":{rows}")), "{stats}");
    assert!(
        stats.contains("\"streams\":{\"opened\":1,\"lines\":2,\"errors\":1}"),
        "{stats}"
    );

    server.stop();
}

#[test]
fn instrumentation_off_leaves_wire_responses_identical() {
    let on = start_server(test_config());
    let off = start_server(ServeConfig {
        instrument: false,
        ..test_config()
    });

    for body in [
        r#"{"point": [0.5, 0.5, 0.5]}"#,
        r#"{"points": [[0.1, 0.2, 0.3], [0.9, 0.8, 0.7]]}"#,
        r#"{"points": [[1, 2]]}"#,
    ] {
        let (s1, _, b1) = post_score(on.addr, body);
        let (s2, _, b2) = post_score(off.addr, body);
        assert_eq!((s1, &b1), (s2, &b2), "wire response changed: {body}");
    }
    let (s1, _, b1) = get(on.addr, "/healthz");
    let (s2, _, b2) = get(off.addr, "/healthz");
    assert_eq!((s1, b1), (s2, b2));

    // Counters stay live with instrumentation off; only the timeline
    // stops. The bad-arity body fails validation before the batcher sees
    // it, so two of the three bodies count as scoring requests.
    let (status, _, text) = get(off.addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(metric_value(&text, "hics_requests_total"), 2);
    assert_eq!(metric_value(&text, "hics_request_seconds_count"), 0);

    on.stop();
    off.stop();
}
