//! End-to-end integration: fit a model with `hics-core`, serve it over real
//! TCP, and drive it with raw HTTP/1.1 clients — including concurrent
//! connections whose responses must match direct engine scores bit-for-bit.

use hics_core::{FitBuilder, HicsParams};
use hics_data::model::NormKind;
use hics_data::SyntheticConfig;
use hics_outlier::QueryEngine;
use hics_serve::{ServeConfig, Server, ShutdownHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

struct RunningServer {
    addr: std::net::SocketAddr,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<()>,
}

impl RunningServer {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread");
    }
}

fn start_server(engine: QueryEngine) -> RunningServer {
    let server = Server::bind(
        engine,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_batch: 64,
            workers: 1,
            keep_alive: Duration::from_secs(5),
            max_connections: 64,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    RunningServer {
        addr,
        handle,
        thread,
    }
}

fn fit_engine() -> (QueryEngine, hics_data::LabeledDataset) {
    let g = SyntheticConfig::new(120, 5).with_seed(44).generate();
    let mut p = HicsParams::paper_defaults();
    p.search.m = 15;
    p.search.candidate_cutoff = 25;
    p.search.top_k = 8;
    p.lof_k = 6;
    let model = FitBuilder::new(p)
        .normalize(NormKind::MinMax)
        .fit(&g.dataset);
    (QueryEngine::from_model(&model, 2), g)
}

/// Sends one HTTP request on an existing stream and reads one response.
fn roundtrip(stream: &mut TcpStream, request: &str) -> (u16, String) {
    stream.write_all(request.as_bytes()).expect("send");
    read_response(stream)
}

/// Reads status code and body of one HTTP/1.1 response (Content-Length
/// framing, which the server always uses).
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read head");
        assert!(n > 0, "connection closed mid-head");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf).expect("utf-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_owned)
        })
        .expect("content-length header")
        .trim()
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn post_score(addr: std::net::SocketAddr, json_body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        json_body.len(),
        json_body
    );
    roundtrip(&mut stream, &request)
}

/// Extracts `"scores": [...]` from a response body without a JSON dep in
/// the test (split on brackets; scores are plain numbers).
fn parse_scores(body: &str) -> Vec<f64> {
    let inner = body
        .split('[')
        .nth(1)
        .and_then(|s| s.split(']').next())
        .expect("scores array");
    inner
        .split(',')
        .map(|t| t.trim().parse::<f64>().expect("numeric score"))
        .collect()
}

#[test]
fn serves_scores_matching_the_engine_bitwise() {
    let (engine, g) = fit_engine();
    let reference = engine.clone();
    let server = start_server(engine);

    let rows: Vec<Vec<f64>> = (0..6).map(|i| g.dataset.row(i * 7)).collect();
    let body = format!(
        "{{\"points\": [{}]}}",
        rows.iter()
            .map(|r| format!(
                "[{}]",
                r.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, response) = post_score(server.addr, &body);
    assert_eq!(status, 200, "{response}");
    let scores = parse_scores(&response);
    assert_eq!(scores.len(), rows.len());
    for (i, (got, row)) in scores.iter().zip(&rows).enumerate() {
        let want = reference.score(row).expect("valid row");
        assert!(*got == want, "row {i}: served {got} != engine {want}");
    }
    server.stop();
}

#[test]
fn concurrent_connections_all_get_correct_answers() {
    let (engine, g) = fit_engine();
    let reference = std::sync::Arc::new(engine.clone());
    let server = start_server(engine);
    let addr = server.addr;

    let mut clients = Vec::new();
    for t in 0..8usize {
        let reference = std::sync::Arc::clone(&reference);
        let row = g.dataset.row((t * 13) % g.dataset.n());
        clients.push(std::thread::spawn(move || {
            let body = format!(
                "{{\"point\": [{}]}}",
                row.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
            );
            let (status, response) = post_score(addr, &body);
            assert_eq!(status, 200, "{response}");
            let got: f64 = response
                .split(':')
                .nth(1)
                .and_then(|s| s.split('}').next())
                .expect("score field")
                .trim()
                .parse()
                .expect("numeric score");
            let want = reference.score(&row).expect("valid row");
            assert!(got == want, "client {t}: {got} != {want}");
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    // The stats endpoint saw all eight requests.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let (status, stats) = roundtrip(
        &mut stream,
        "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(stats.contains("\"requests\":8"), "{stats}");
    server.stop();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let (engine, _) = fit_engine();
    let server = start_server(engine);
    let mut stream = TcpStream::connect(server.addr).expect("connect");

    let (status, body) = roundtrip(&mut stream, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"status\":\"ok\"}");

    let (status, body) = roundtrip(&mut stream, "GET /model HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"attributes\":5"), "{body}");

    // Same socket, third request.
    let json = "{\"point\": [0.5, 0.5, 0.5, 0.5, 0.5]}";
    let request = format!(
        "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        json.len(),
        json
    );
    let (status, body) = roundtrip(&mut stream, &request);
    assert_eq!(status, 200, "{body}");
    server.stop();
}

#[test]
fn malformed_requests_get_4xx_not_hangs() {
    let (engine, _) = fit_engine();
    let server = start_server(engine);

    let (status, body) = post_score(server.addr, "{\"points\": [[1, 2]]}");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("error"), "{body}");

    let (status, _) = post_score(server.addr, "not json at all");
    assert_eq!(status, 400);

    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let (status, _) = roundtrip(
        &mut stream,
        "GET /no-such-route HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 404);
    server.stop();
}
