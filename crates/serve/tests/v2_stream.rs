//! Integration tests for the v2 wire protocol over real TCP: NDJSON
//! streaming on `/v2/score` (sized and multi-chunk chunked bodies,
//! malformed lines reported in-stream), `/admin/reload` hot model swaps,
//! and a reload racing an active stream without dropping the connection.

use hics_core::{FitBuilder, HicsParams};
use hics_data::model::NormKind;
use hics_data::{HicsModel, SyntheticConfig};
use hics_outlier::QueryEngine;
use hics_serve::{ServeConfig, Server, ShutdownHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct RunningServer {
    addr: std::net::SocketAddr,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<()>,
}

impl RunningServer {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread");
    }
}

fn quick_params(seed: u64) -> HicsParams {
    let mut p = HicsParams::paper_defaults().with_seed(seed);
    p.search.m = 15;
    p.search.candidate_cutoff = 25;
    p.search.top_k = 8;
    p.lof_k = 6;
    p
}

fn fit_model(seed: u64) -> (HicsModel, hics_data::LabeledDataset) {
    let g = SyntheticConfig::new(120, 5).with_seed(seed).generate();
    let model = FitBuilder::new(quick_params(seed))
        .normalize(NormKind::MinMax)
        .fit(&g.dataset);
    (model, g)
}

fn temp_artifact(name: &str, model: &HicsModel) -> PathBuf {
    let dir = std::env::temp_dir().join("hics-v2-stream-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    model.save(&path).expect("save artifact");
    path
}

fn start_server(engine: QueryEngine) -> RunningServer {
    let server = Server::bind(
        engine,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_batch: 64,
            workers: 1,
            keep_alive: Duration::from_secs(5),
            stream_idle: Duration::from_secs(2),
            max_connections: 64,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    RunningServer {
        addr,
        handle,
        thread,
    }
}

/// Reads one chunked HTTP response off the stream: (status, decoded body).
fn read_chunked_response<S: Read>(stream: &mut S) -> (u16, String) {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("head line");
        if line == "\r\n" || line.is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric status");
    assert!(
        head.to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "{head}"
    );
    let mut body = String::new();
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line).expect("chunk size");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex size");
        if size == 0 {
            let mut crlf = String::new();
            reader.read_line(&mut crlf).expect("final crlf");
            return (status, body);
        }
        let mut chunk = vec![0u8; size + 2]; // data + CRLF
        reader.read_exact(&mut chunk).expect("chunk data");
        body.push_str(std::str::from_utf8(&chunk[..size]).expect("utf-8 chunk"));
    }
}

/// Pulls the `"score"` value out of one NDJSON response line.
fn score_of(line: &str) -> f64 {
    assert!(line.contains("\"score\""), "not a score line: {line}");
    line.split(':')
        .nth(1)
        .and_then(|s| s.split('}').next())
        .expect("score value")
        .trim()
        .parse()
        .expect("numeric score")
}

#[test]
fn v2_stream_scores_lines_with_content_length_body() {
    let (model, g) = fit_model(51);
    let reference = QueryEngine::from_model(&model, 2);
    let server = start_server(QueryEngine::from_model(&model, 2));

    let rows: Vec<Vec<f64>> = (0..5).map(|i| g.dataset.row(i * 11)).collect();
    let mut body = String::new();
    for (i, row) in rows.iter().enumerate() {
        // Mix the two accepted line shapes.
        let values = row.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
        if i % 2 == 0 {
            body.push_str(&format!("[{values}]\n"));
        } else {
            body.push_str(&format!("{{\"point\": [{values}]}}\n"));
        }
    }
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    write!(
        stream,
        "POST /v2/score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("send");
    let (status, reply) = read_chunked_response(&mut stream);
    assert_eq!(status, 200);
    let lines: Vec<&str> = reply.lines().collect();
    assert_eq!(lines.len(), rows.len(), "{reply}");
    for (i, (line, row)) in lines.iter().zip(&rows).enumerate() {
        let want = reference.score(row).expect("valid row");
        let got = score_of(line);
        assert!(got == want, "line {i}: {got} != {want}");
    }
    server.stop();
}

#[test]
fn v2_stream_decodes_multi_chunk_bodies_and_reports_bad_lines_in_stream() {
    let (model, g) = fit_model(52);
    let reference = QueryEngine::from_model(&model, 2);
    let server = start_server(QueryEngine::from_model(&model, 2));

    let good_row = g.dataset.row(3);
    let values = good_row
        .iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let good_line = format!("[{values}]\n");
    // Three NDJSON lines (good, malformed JSON, wrong arity), delivered in
    // chunks that split the first line mid-number.
    let payload = format!("{good_line}not json at all\n[1,2]\n");
    let (a, b) = payload.split_at(7);
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    write!(
        stream,
        "POST /v2/score HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )
    .expect("send head");
    for part in [a, b] {
        write!(stream, "{:x}\r\n{}\r\n", part.len(), part).expect("send chunk");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
    }
    write!(stream, "0\r\n\r\n").expect("terminal chunk");

    let (status, reply) = read_chunked_response(&mut stream);
    assert_eq!(status, 200);
    let lines: Vec<&str> = reply.lines().collect();
    assert_eq!(lines.len(), 3, "{reply}");
    let want = reference.score(&good_row).expect("valid row");
    assert!(score_of(lines[0]) == want, "{} != {want}", lines[0]);
    assert!(
        lines[1].contains("\"error\"") && lines[1].contains("\"line\":2"),
        "{}",
        lines[1]
    );
    assert!(
        lines[2].contains("\"error\"") && lines[2].contains("model expects 5"),
        "{}",
        lines[2]
    );
    server.stop();
}

#[test]
fn v2_stream_survives_a_concurrent_hot_reload_and_scores_change() {
    let (first, g) = fit_model(53);
    let (second, _) = fit_model(54);
    let second_path = temp_artifact("reload-target.hics", &second);
    let ref_first = QueryEngine::from_model(&first, 2);
    let ref_second = QueryEngine::from_model(&second, 2);
    let server = start_server(QueryEngine::from_model(&first, 2));

    let row = g.dataset.row(17);
    let want_first = ref_first.score(&row).expect("valid row");
    let want_second = ref_second.score(&row).expect("valid row");
    assert!(
        want_first != want_second,
        "test needs models that disagree on the probe row"
    );
    let values = row.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
    let line = format!("[{values}]\n");

    // Open the stream and send the first line.
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    write!(
        stream,
        "POST /v2/score HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )
    .expect("send head");
    write!(stream, "{:x}\r\n{}\r\n", line.len(), line).expect("first line");
    stream.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(50));

    // Reload to the second model on a separate connection while the stream
    // is open and mid-body.
    let mut admin = TcpStream::connect(server.addr).expect("admin connect");
    let body = format!("{{\"model\": \"{}\"}}", second_path.display());
    write!(
        admin,
        "POST /admin/reload HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("admin send");
    let mut reply = String::new();
    admin.read_to_string(&mut reply).expect("admin reply");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.contains("\"status\":\"reloaded\""), "{reply}");

    // The same connection keeps streaming; the next line must score against
    // the new model.
    write!(stream, "{:x}\r\n{}\r\n", line.len(), line).expect("second line");
    write!(stream, "0\r\n\r\n").expect("terminal chunk");
    let (status, reply) = read_chunked_response(&mut stream);
    assert_eq!(status, 200);
    let lines: Vec<&str> = reply.lines().collect();
    assert_eq!(lines.len(), 2, "{reply}");
    assert!(
        score_of(lines[0]) == want_first,
        "pre-reload line: {} != {want_first}",
        lines[0]
    );
    assert!(
        score_of(lines[1]) == want_second,
        "post-reload line: {} != {want_second}",
        lines[1]
    );

    std::fs::remove_file(&second_path).ok();
    server.stop();
}

#[test]
fn v2_stream_keeps_the_connection_alive_after_a_complete_body() {
    let (model, g) = fit_model(55);
    let reference = QueryEngine::from_model(&model, 2);
    let server = start_server(QueryEngine::from_model(&model, 2));

    let row = g.dataset.row(9);
    let values = row.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
    let line = format!("[{values}]\n");
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    // Two streaming requests on one keep-alive connection.
    for round in 0..2 {
        write!(
            stream,
            "POST /v2/score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            line.len(),
            line
        )
        .expect("send");
        let (status, reply) = read_chunked_response(&mut stream);
        assert_eq!(status, 200, "round {round}");
        let want = reference.score(&row).expect("valid row");
        assert!(
            score_of(reply.lines().next().expect("one line")) == want,
            "round {round}: {reply}"
        );
    }
    server.stop();
}

#[test]
fn mmap_served_engine_answers_identically_over_the_wire() {
    let (model, g) = fit_model(56);
    let path = temp_artifact("mmap-served.hics", &model);
    let artifact = Arc::new(hics_data::ModelArtifact::open_mmap(&path).expect("open_mmap"));
    let reference = QueryEngine::from_model(&model, 2);
    let server = start_server(QueryEngine::from_artifact(artifact, None, 2));

    let row = g.dataset.row(21);
    let body = format!(
        "{{\"point\": [{}]}}",
        row.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
    );
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    write!(
        stream,
        "POST /score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("reply");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let got: f64 = reply
        .split("\"score\":")
        .nth(1)
        .and_then(|s| s.split('}').next())
        .expect("score")
        .trim()
        .parse()
        .expect("numeric");
    let want = reference.score(&row).expect("valid row");
    assert!(got == want, "{got} != {want}");

    std::fs::remove_file(&path).ok();
    server.stop();
}
