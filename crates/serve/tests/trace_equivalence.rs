//! Tracing wire equivalence: with instrumentation off, scoring responses
//! are byte-for-byte what an untraced server sends and carry no
//! `x-hics-trace` header at all; with it on, the response bytes only
//! change for clients that sent the header themselves (the echo). Also
//! covers the `/trace` surfaces end to end over real TCP.

use hics_data::model::{
    apply_normalization, AggregationKind, HicsModel, ModelSubspace, NormKind, ScorerKind,
    ScorerSpec,
};
use hics_data::SyntheticConfig;
use hics_outlier::QueryEngine;
use hics_serve::{ServeConfig, Server, ShutdownHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

struct RunningServer {
    addr: std::net::SocketAddr,
    handle: ShutdownHandle,
    thread: std::thread::JoinHandle<()>,
}

impl RunningServer {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread");
    }
}

fn engine() -> QueryEngine {
    let g = SyntheticConfig::new(80, 3).with_seed(17).generate();
    let (data, norm) = apply_normalization(&g.dataset, NormKind::None);
    let model = HicsModel::new(
        data,
        NormKind::None,
        norm,
        vec![ModelSubspace {
            dims: vec![0, 2],
            contrast: 0.6,
        }],
        ScorerSpec {
            kind: ScorerKind::KnnMean,
            k: 4,
        },
        AggregationKind::Average,
    );
    QueryEngine::from_model(&model, 1)
}

fn start_server(instrument: bool) -> RunningServer {
    let server = Server::bind(
        engine(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            max_batch: 16,
            workers: 1,
            keep_alive: Duration::from_secs(5),
            max_connections: 16,
            instrument,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    RunningServer {
        addr,
        handle,
        thread,
    }
}

/// One full close-delimited exchange: the exact bytes the server sent.
fn raw_exchange(addr: std::net::SocketAddr, request: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read to close");
    buf
}

fn score_request(extra_header: &str) -> String {
    let body = "{\"point\": [0.3, 0.6, 0.9]}";
    format!(
        "POST /score HTTP/1.1\r\nHost: t\r\n{extra_header}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

const TRACE_HEADER: &str = "x-hics-trace: 00000000000000ab-00000000000000cd\r\n";

fn status_of(raw: &[u8]) -> u16 {
    let text = String::from_utf8_lossy(raw);
    text.split(' ')
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric status")
}

#[test]
fn untraced_clients_see_identical_bytes_with_tracing_on_or_off() {
    let on = start_server(true);
    let off = start_server(false);
    let plain = score_request("");

    let from_on = raw_exchange(on.addr, &plain);
    let from_off = raw_exchange(off.addr, &plain);
    assert_eq!(
        from_on, from_off,
        "tracing must not change wire bytes for clients that did not ask for it"
    );
    assert!(
        !String::from_utf8_lossy(&from_on).contains("x-hics-trace"),
        "no echo header without a client header"
    );

    // An explicit client header: echoed when tracing is on, absent (and
    // the response byte-identical to the untraced one) when off.
    let traced = score_request(TRACE_HEADER);
    let echoed = raw_exchange(on.addr, &traced);
    assert!(
        String::from_utf8_lossy(&echoed).contains("x-hics-trace: 00000000000000ab-"),
        "traced response echoes trace id and assigned span id: {}",
        String::from_utf8_lossy(&echoed)
    );
    let suppressed = raw_exchange(off.addr, &traced);
    assert_eq!(
        suppressed, from_off,
        "--no-instrument drops the header entirely, bytes unchanged"
    );

    on.stop();
    off.stop();
}

#[test]
fn explicit_traces_are_retained_and_served() {
    let server = start_server(true);
    let raw = raw_exchange(server.addr, &score_request(TRACE_HEADER));
    assert_eq!(status_of(&raw), 200);

    // The explicit trace is force-retained; the flush that closes it runs
    // just after the last response byte, so poll briefly.
    let fetch = |path: &str| {
        raw_exchange(
            server.addr,
            &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    };
    let mut detail = Vec::new();
    for _ in 0..50 {
        detail = fetch("/trace/00000000000000ab");
        if status_of(&detail) == 200 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let detail = String::from_utf8_lossy(&detail);
    assert!(
        detail.contains("\"trace_id\":\"00000000000000ab\""),
        "{detail}"
    );
    assert!(detail.contains("\"name\":\"req /score\""), "{detail}");
    assert!(
        detail.contains("\"kept\":\"header\""),
        "client-requested traces are always retained: {detail}"
    );
    assert!(
        detail.contains("\"name\":\"score\""),
        "stage child spans present: {detail}"
    );

    let index = fetch("/trace");
    assert_eq!(status_of(&index), 200);
    assert!(
        String::from_utf8_lossy(&index).contains("\"id\":\"00000000000000ab\""),
        "{}",
        String::from_utf8_lossy(&index)
    );

    assert_eq!(status_of(&fetch("/trace/zz")), 400, "non-hex id rejected");
    assert_eq!(
        status_of(&fetch("/trace/00000000000000aa")),
        404,
        "unknown id is a 404"
    );

    server.stop();
}
