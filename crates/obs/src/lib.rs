//! Observability primitives for the HiCS serving stack — in the repo's
//! no-external-deps idiom (no `prometheus`, no `metrics`, no `tracing`).
//!
//! Three pieces:
//!
//! * **Instruments** ([`Counter`], [`Gauge`], [`Histogram`]): plain atomics,
//!   designed for zero allocation and no locking on hot paths. The
//!   histogram is log-linear (HDR-style) — bounded memory with a
//!   configurable relative error, and p50/p90/p99/p999 extraction from the
//!   full recorded distribution.
//! * **[`Registry`]**: names the instruments and renders one snapshot in
//!   Prometheus text exposition format. Registration takes a short lock;
//!   recording never does (callers hold `Arc`s straight to the atomics).
//! * **[`Timeline`]**: a lightweight span facility that timestamps one
//!   request's lifecycle stages (accept → head parse → body → batch
//!   enqueue → score → flush) against a monotonic clock, for per-stage
//!   latency histograms and slow-query logs.
//! * **[`trace`]**: distributed request tracing — 64-bit trace/span ids,
//!   a lock-light [`Tracer`] on the same monotonic-clock discipline as
//!   [`Timeline`], and a bounded trace store with tail-based retention
//!   (slow, errored, hedged or 1-in-N sampled traces are kept).

#![warn(missing_docs)]

mod histogram;
mod registry;
mod timeline;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry};
pub use timeline::{Stage, Timeline, STAGES, STAGE_COUNT};
pub use trace::{Span, SpanStatus, StoredTrace, TraceConfig, TraceContext, Tracer};
