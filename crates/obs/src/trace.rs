//! Distributed request tracing: spans, a lock-light [`Tracer`], and a
//! bounded trace store with **tail-based retention**.
//!
//! A trace is a tree of [`Span`]s sharing a 64-bit `trace_id`; every span
//! carries its own 64-bit `span_id` and an optional parent. Ids travel
//! between processes in the `x-hics-trace` header (`trace_id-span_id`,
//! both zero-padded lowercase hex — see [`format_header`]/
//! [`parse_header`]). Timestamps are nanosecond offsets on the tracer's
//! monotonic clock (the same `Instant` clock the request
//! [`Timeline`](crate::Timeline) uses), so spans recorded anywhere in one
//! process align without clock sync.
//!
//! Spans accumulate in small per-trace pending buffers while a request is
//! in flight; [`Tracer::finish_trace`] closes the root span and decides
//! retention *after* the outcome is known (tail-based): a completed trace
//! is kept when it was explicitly requested (the client sent
//! `x-hics-trace`), errored, slow (duration at or over
//! [`TraceConfig::slow`]), hedged or retried, or hit the 1-in-N sample
//! tick. Retained traces live in a bounded ring buffer; everything else
//! is dropped, so the store stays small but always holds the interesting
//! requests.
//!
//! [`set_current`]/[`current`] carry a [`TraceContext`] across component
//! boundaries on the same thread — the serving tier plants the request's
//! context before handing rows to a scoring engine, and the router picks
//! it up without either layer knowing about the other.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Terminal state of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// The operation completed normally.
    Ok,
    /// The operation failed (5xx response, upstream error, eviction).
    Error,
}

impl SpanStatus {
    /// Lower-case wire name (`"ok"` / `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Error => "error",
        }
    }
}

/// One timed operation inside a trace.
#[derive(Debug, Clone)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's own id.
    pub span_id: u64,
    /// Parent span id, `None` for a root.
    pub parent: Option<u64>,
    /// Human-readable operation name (`"req /score"`, `"shard1"`, …).
    pub name: String,
    /// Start, as nanoseconds on the owning tracer's monotonic clock.
    pub start_ns: u64,
    /// End, same clock; `0` until finished.
    pub end_ns: u64,
    /// Free-form key/value annotations (replica addr, outcome, …).
    pub tags: Vec<(String, String)>,
    /// Terminal status.
    pub status: SpanStatus,
}

impl Span {
    /// Appends one tag.
    pub fn tag(&mut self, key: &str, value: impl Into<String>) {
        self.tags.push((key.to_string(), value.into()));
    }

    /// Span duration in nanoseconds (saturating; 0 while unfinished).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    fn approx_bytes(&self) -> usize {
        96 + self.name.len()
            + self
                .tags
                .iter()
                .map(|(k, v)| k.len() + v.len() + 8)
                .sum::<usize>()
    }
}

/// Tail-sampling and capacity knobs for a [`Tracer`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Completed traces at or over this duration are always kept.
    pub slow: Duration,
    /// Keep 1 in N organic traces regardless of outcome (`0` disables
    /// the sample tick entirely).
    pub sample_every: u64,
    /// Retained traces kept in the ring buffer (oldest evicted first).
    pub capacity: usize,
    /// Bound on in-flight (unfinished) trace buffers; beyond it the
    /// stalest buffer is dropped, so abandoned traces cannot leak.
    pub max_pending: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            slow: Duration::from_millis(25),
            sample_every: 64,
            capacity: 256,
            max_pending: 1024,
        }
    }
}

/// A completed, retained trace.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The shared trace id.
    pub trace_id: u64,
    /// Root-span duration in nanoseconds.
    pub duration_ns: u64,
    /// Error if any member span errored.
    pub status: SpanStatus,
    /// Which retention rule kept it (`"header"`, `"error"`, `"slow"`,
    /// `"hedge"`, `"sampled"`).
    pub kept: &'static str,
    /// All member spans, ordered by start time.
    pub spans: Vec<Span>,
}

/// Spans per trace beyond which further records are discarded — a
/// runaway-instrumentation backstop, far above any real request.
const MAX_SPANS_PER_TRACE: usize = 512;

/// Pending buffers older than this are presumed abandoned (their request
/// died without finishing) and are swept on the next insert.
const PENDING_SWEEP_NS: u64 = 30_000_000_000;

struct Pending {
    trace_id: u64,
    touched_ns: u64,
    spans: Vec<Span>,
}

struct Store {
    ring: VecDeque<StoredTrace>,
    bytes: usize,
}

/// Generates ids, collects spans, and retains completed traces.
///
/// All methods take `&self`; each lock (id generator, pending buffers,
/// store ring) is held only for the few instructions of one insert, and
/// nothing is locked at all when tracing is not in use.
pub struct Tracer {
    epoch: Instant,
    cfg: TraceConfig,
    ids: Mutex<StdRng>,
    sample_tick: AtomicU64,
    pending: Mutex<Vec<Pending>>,
    store: Mutex<Store>,
    finished: AtomicU64,
    retained: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(retained {} traces)", self.store_len())
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

/// Seed material for the id generator: wall clock, a per-process
/// counter (two tracers born in the same nanosecond still diverge) and
/// ASLR noise. Ids need to be unique-ish across a fleet, not secret.
fn entropy_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let c = COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    let aslr = &COUNTER as *const _ as u64;
    t ^ c.rotate_left(31) ^ aslr.rotate_left(17) ^ ((std::process::id() as u64) << 40)
}

impl Tracer {
    /// A tracer with the given retention configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        Self {
            epoch: Instant::now(),
            cfg,
            ids: Mutex::new(StdRng::seed_from_u64(entropy_seed())),
            sample_tick: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
            store: Mutex::new(Store {
                ring: VecDeque::new(),
                bytes: 0,
            }),
            finished: AtomicU64::new(0),
            retained: AtomicU64::new(0),
        }
    }

    /// The retention configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Nanoseconds since this tracer was created (its monotonic clock).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// A fresh non-zero 64-bit id.
    pub fn next_id(&self) -> u64 {
        let mut rng = self.ids.lock().expect("tracer id lock");
        loop {
            let id = rng.next_u64();
            if id != 0 {
                return id;
            }
        }
    }

    /// Opens a span starting now. The caller finishes it with
    /// [`Tracer::finish_span`] (or stamps `end_ns` itself and calls
    /// [`Tracer::record`]).
    pub fn begin_span(&self, trace_id: u64, parent: Option<u64>, name: impl Into<String>) -> Span {
        Span {
            trace_id,
            span_id: self.next_id(),
            parent,
            name: name.into(),
            start_ns: self.now_ns(),
            end_ns: 0,
            tags: Vec::new(),
            status: SpanStatus::Ok,
        }
    }

    /// Stamps the end time (when unset) and records the span.
    pub fn finish_span(&self, mut span: Span) {
        if span.end_ns == 0 {
            span.end_ns = self.now_ns();
        }
        self.record(span);
    }

    /// Files a completed span into its trace's pending buffer. Buffers
    /// are bounded ([`TraceConfig::max_pending`] traces, stale ones
    /// swept) so spans whose trace never finishes cannot leak.
    pub fn record(&self, span: Span) {
        let now = self.now_ns();
        let mut pending = self.pending.lock().expect("tracer pending lock");
        if let Some(entry) = pending.iter_mut().find(|e| e.trace_id == span.trace_id) {
            entry.touched_ns = now;
            if entry.spans.len() < MAX_SPANS_PER_TRACE {
                entry.spans.push(span);
            }
            return;
        }
        if pending.len() >= self.cfg.max_pending {
            pending.retain(|e| now.saturating_sub(e.touched_ns) < PENDING_SWEEP_NS);
            if pending.len() >= self.cfg.max_pending {
                if let Some((stalest, _)) = pending
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.touched_ns)
                    .map(|(i, e)| (i, e.trace_id))
                {
                    pending.swap_remove(stalest);
                }
            }
        }
        pending.push(Pending {
            trace_id: span.trace_id,
            touched_ns: now,
            spans: vec![span],
        });
    }

    /// Closes a trace: stamps the root span's end (when unset), folds in
    /// every pending span of the same `trace_id`, and applies tail-based
    /// retention. `forced` marks an explicitly requested trace (the
    /// client sent `x-hics-trace`) — always kept.
    pub fn finish_trace(&self, mut root: Span, forced: bool) {
        if root.end_ns == 0 {
            root.end_ns = self.now_ns();
        }
        let duration_ns = root.duration_ns();
        let trace_id = root.trace_id;
        let mut spans = {
            let mut pending = self.pending.lock().expect("tracer pending lock");
            match pending.iter().position(|e| e.trace_id == trace_id) {
                Some(i) => pending.swap_remove(i).spans,
                None => Vec::new(),
            }
        };
        spans.push(root);
        spans.sort_by_key(|s| s.start_ns);
        self.finished.fetch_add(1, Ordering::Relaxed);

        let errored = spans.iter().any(|s| s.status == SpanStatus::Error);
        let hedged = spans.iter().any(|s| {
            s.tags
                .iter()
                .any(|(k, v)| k == "kind" && (v == "hedge" || v == "retry"))
        });
        let tick = self.sample_tick.fetch_add(1, Ordering::Relaxed);
        let sampled = self.cfg.sample_every > 0 && tick.is_multiple_of(self.cfg.sample_every);
        let kept = if forced {
            "header"
        } else if errored {
            "error"
        } else if duration_ns >= self.cfg.slow.as_nanos() as u64 {
            "slow"
        } else if hedged {
            "hedge"
        } else if sampled {
            "sampled"
        } else {
            return;
        };
        self.retained.fetch_add(1, Ordering::Relaxed);

        let stored = StoredTrace {
            trace_id,
            duration_ns,
            status: if errored {
                SpanStatus::Error
            } else {
                SpanStatus::Ok
            },
            kept,
            spans,
        };
        let bytes: usize = stored.spans.iter().map(Span::approx_bytes).sum();
        let mut store = self.store.lock().expect("tracer store lock");
        while store.ring.len() >= self.cfg.capacity.max(1) {
            if let Some(evicted) = store.ring.pop_front() {
                store.bytes = store
                    .bytes
                    .saturating_sub(evicted.spans.iter().map(Span::approx_bytes).sum());
            }
        }
        store.ring.push_back(stored);
        store.bytes += bytes;
    }

    /// Retained trace count.
    pub fn store_len(&self) -> usize {
        self.store.lock().expect("tracer store lock").ring.len()
    }

    /// Approximate heap footprint of the retained traces, in bytes — the
    /// store's memory bound is `capacity × max trace size`, and this is
    /// what the bench reports against it.
    pub fn store_bytes(&self) -> usize {
        self.store.lock().expect("tracer store lock").bytes
    }

    /// `(finished, retained)` trace counters since startup.
    pub fn counts(&self) -> (u64, u64) {
        (
            self.finished.load(Ordering::Relaxed),
            self.retained.load(Ordering::Relaxed),
        )
    }

    /// A clone of one retained trace, newest match first.
    pub fn get(&self, trace_id: u64) -> Option<StoredTrace> {
        let store = self.store.lock().expect("tracer store lock");
        store
            .ring
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// `GET /trace` body: the retained-trace index, newest first.
    pub fn index_json(&self) -> String {
        let store = self.store.lock().expect("tracer store lock");
        let mut out = String::from("{\"traces\":[");
        for (i, t) in store.ring.iter().rev().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":\"");
            out.push_str(&format_id(t.trace_id));
            out.push_str("\",\"duration_us\":");
            out.push_str(&(t.duration_ns / 1_000).to_string());
            out.push_str(",\"status\":\"");
            out.push_str(t.status.name());
            out.push_str("\",\"spans\":");
            out.push_str(&t.spans.len().to_string());
            out.push_str(",\"kept\":\"");
            out.push_str(t.kept);
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }

    /// `GET /trace/<id>` body: every span of one retained trace, or
    /// `None` when the id is unknown (evicted or never kept).
    pub fn trace_json(&self, trace_id: u64) -> Option<String> {
        let trace = self.get(trace_id)?;
        let mut out = String::from("{\"trace_id\":\"");
        out.push_str(&format_id(trace.trace_id));
        out.push_str("\",\"duration_ns\":");
        out.push_str(&trace.duration_ns.to_string());
        out.push_str(",\"status\":\"");
        out.push_str(trace.status.name());
        out.push_str("\",\"kept\":\"");
        out.push_str(trace.kept);
        out.push_str("\",\"spans\":[");
        for (i, s) in trace.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"span_id\":\"");
            out.push_str(&format_id(s.span_id));
            out.push_str("\",\"parent\":");
            match s.parent {
                Some(p) => {
                    out.push('"');
                    out.push_str(&format_id(p));
                    out.push('"');
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":");
            push_json_str(&mut out, &s.name);
            out.push_str(",\"start_ns\":");
            out.push_str(&s.start_ns.to_string());
            out.push_str(",\"end_ns\":");
            out.push_str(&s.end_ns.to_string());
            out.push_str(",\"status\":\"");
            out.push_str(s.status.name());
            out.push_str("\",\"tags\":{");
            for (j, (k, v)) in s.tags.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                push_json_str(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        Some(out)
    }
}

/// Minimal JSON string escaping (quote, backslash, control characters).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One id as 16 lowercase hex digits.
pub fn format_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a hex id (1–16 digits).
pub fn parse_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// The `x-hics-trace` header value: `trace_id-span_id` in hex.
pub fn format_header(trace_id: u64, span_id: u64) -> String {
    format!("{trace_id:016x}-{span_id:016x}")
}

/// Parses an `x-hics-trace` value; the trace id must be non-zero.
pub fn parse_header(value: &str) -> Option<(u64, u64)> {
    let (t, s) = value.trim().split_once('-')?;
    let trace_id = parse_id(t)?;
    let span_id = parse_id(s)?;
    if trace_id == 0 {
        return None;
    }
    Some((trace_id, span_id))
}

/// The ids a layer needs to parent its spans under the active request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The request's trace id.
    pub trace_id: u64,
    /// The span the next layer should parent under.
    pub parent_span: u64,
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Installs (or clears) the calling thread's active trace context.
pub fn set_current(ctx: Option<TraceContext>) {
    CURRENT.with(|c| c.set(ctx));
}

/// The calling thread's active trace context, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(slow_ms: u64, sample_every: u64, capacity: usize) -> Tracer {
        Tracer::new(TraceConfig {
            slow: Duration::from_millis(slow_ms),
            sample_every,
            capacity,
            max_pending: 8,
        })
    }

    /// A root span completed at `duration_ns`, ready for finish_trace.
    fn root(t: &Tracer, duration_ns: u64) -> Span {
        let mut s = t.begin_span(t.next_id(), None, "req /score");
        s.end_ns = s.start_ns + duration_ns;
        s
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let t = Tracer::default();
        let a = t.next_id();
        let b = t.next_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn header_round_trips_and_rejects_junk() {
        let v = format_header(0xabcd, 0x1234);
        assert_eq!(v, "000000000000abcd-0000000000001234");
        assert_eq!(parse_header(&v), Some((0xabcd, 0x1234)));
        assert_eq!(parse_header("abcd-ef"), Some((0xabcd, 0xef)));
        assert_eq!(parse_header(""), None);
        assert_eq!(parse_header("no-dash-here-x"), None);
        assert_eq!(parse_header("0-12"), None, "zero trace id");
        assert_eq!(parse_header("12345678901234567-1"), None, "too long");
        assert_eq!(parse_header("zz-1"), None);
    }

    #[test]
    fn fast_clean_traces_are_dropped_slow_ones_kept() {
        let t = tracer(10, 0, 16);
        t.finish_trace(root(&t, 1_000), false);
        assert_eq!(t.store_len(), 0, "fast, clean, unsampled: dropped");
        t.finish_trace(root(&t, 50_000_000), false);
        assert_eq!(t.store_len(), 1);
        let json = t.index_json();
        assert!(json.contains("\"kept\":\"slow\""), "{json}");
    }

    #[test]
    fn errored_and_hedged_traces_are_kept() {
        let t = tracer(1_000, 0, 16);
        let mut r = root(&t, 100);
        r.status = SpanStatus::Error;
        t.finish_trace(r, false);

        let r = root(&t, 100);
        let mut child = t.begin_span(r.trace_id, Some(r.span_id), "shard0");
        child.tag("kind", "hedge");
        t.finish_span(child);
        t.finish_trace(r, false);

        assert_eq!(t.store_len(), 2);
        let json = t.index_json();
        assert!(json.contains("\"kept\":\"error\""), "{json}");
        assert!(json.contains("\"kept\":\"hedge\""), "{json}");
    }

    #[test]
    fn forced_traces_bypass_sampling() {
        let t = tracer(1_000, 0, 16);
        let r = root(&t, 10);
        let id = r.trace_id;
        t.finish_trace(r, true);
        assert_eq!(t.store_len(), 1);
        let json = t.trace_json(id).expect("kept");
        assert!(json.contains("\"kept\":\"header\""), "{json}");
    }

    #[test]
    fn one_in_n_sampling_keeps_every_nth() {
        let t = tracer(1_000, 4, 64);
        for _ in 0..8 {
            t.finish_trace(root(&t, 10), false);
        }
        assert_eq!(t.store_len(), 2, "ticks 0 and 4 of 8");
        assert_eq!(t.counts(), (8, 2));
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_tracks_bytes() {
        let t = tracer(0, 0, 3); // slow=0: everything is kept
        let first = root(&t, 10);
        let first_id = first.trace_id;
        t.finish_trace(first, false);
        for _ in 0..3 {
            t.finish_trace(root(&t, 10), false);
        }
        assert_eq!(t.store_len(), 3);
        assert!(t.get(first_id).is_none(), "oldest evicted");
        assert!(t.store_bytes() > 0);
        let per_trace = t.store_bytes() / 3;
        assert!(
            t.store_bytes() <= 3 * (per_trace + 64),
            "bytes track the ring"
        );
    }

    #[test]
    fn spans_fold_into_their_trace_and_render() {
        let t = tracer(0, 0, 8);
        let r = root(&t, 1_000);
        let id = r.trace_id;
        let mut child = t.begin_span(id, Some(r.span_id), "shard0");
        child.tag("replica", "127.0.0.1:1");
        child.tag("outcome", "ok");
        t.finish_span(child);
        // A span of an unrelated trace must not leak in.
        t.record(t.begin_span(t.next_id(), None, "stray"));
        t.finish_trace(r, false);

        let json = t.trace_json(id).expect("kept");
        assert!(json.contains("\"name\":\"shard0\""), "{json}");
        assert!(json.contains("\"name\":\"req /score\""), "{json}");
        assert!(json.contains("\"replica\":\"127.0.0.1:1\""), "{json}");
        assert!(!json.contains("stray"), "{json}");
        assert_eq!(t.get(id).expect("stored").spans.len(), 2);
    }

    #[test]
    fn pending_buffers_are_bounded() {
        let t = tracer(0, 0, 8); // max_pending = 8
        for _ in 0..50 {
            t.record(t.begin_span(t.next_id(), None, "orphan"));
        }
        let pending = t.pending.lock().unwrap();
        assert!(pending.len() <= 8, "pending bounded: {}", pending.len());
    }

    #[test]
    fn thread_local_context_round_trips() {
        assert_eq!(current(), None);
        let ctx = TraceContext {
            trace_id: 7,
            parent_span: 9,
        };
        set_current(Some(ctx));
        assert_eq!(current(), Some(ctx));
        set_current(None);
        assert_eq!(current(), None);
        // Other threads see their own slot.
        set_current(Some(ctx));
        std::thread::spawn(|| assert_eq!(current(), None))
            .join()
            .unwrap();
        set_current(None);
    }

    #[test]
    fn json_strings_are_escaped() {
        let t = tracer(0, 0, 8);
        let mut r = root(&t, 10);
        r.name = "req \"quoted\"\\path\n".into();
        let id = r.trace_id;
        t.finish_trace(r, false);
        let json = t.trace_json(id).expect("kept");
        assert!(json.contains("req \\\"quoted\\\"\\\\path\\u000a"), "{json}");
    }
}
