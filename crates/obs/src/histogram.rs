//! Log-linear bounded-memory histogram with lock-free recording.
//!
//! The bucket layout is the HDR idiom: values below `2^sub_bits` get one
//! bucket each (exact); above that, every power-of-two octave is split into
//! `2^sub_bits` linear sub-buckets, so the relative quantile error is
//! bounded by `2^-sub_bits` at any magnitude. Memory is fixed at
//! construction from the value cap — recording is one atomic increment, no
//! allocation, no locking, safe from any number of writer threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// The quantiles rendered in Prometheus exposition.
pub(crate) const QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// A concurrent log-linear histogram over `u64` values.
#[derive(Debug)]
pub struct Histogram {
    sub_bits: u32,
    max_value: u64,
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// Bucket index of `v` in the log-linear layout.
fn index_for(v: u64, sub_bits: u32) -> usize {
    let base = 1u64 << sub_bits;
    if v < base {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= sub_bits
    let sub = ((v >> (octave - sub_bits)) - base) as usize;
    (octave - sub_bits + 1) as usize * base as usize + sub
}

/// Largest value mapping to bucket `idx` (inclusive upper bound).
fn upper_bound(idx: usize, sub_bits: u32) -> u64 {
    let base = 1usize << sub_bits;
    if idx < base {
        return idx as u64;
    }
    let group = idx / base; // >= 1
    let within = (idx % base) as u64;
    let octave = group as u32 - 1 + sub_bits;
    let width = 1u64 << (octave - sub_bits);
    let lower = (base as u64 + within) << (octave - sub_bits);
    lower + width - 1
}

impl Histogram {
    /// A histogram resolving values up to `max_value` with relative error
    /// at most `2^-sub_bits` (values above `max_value` are clamped into the
    /// top bucket). Values below `2^sub_bits` are recorded exactly.
    ///
    /// # Panics
    /// Panics if `sub_bits > 16` or `max_value == 0`.
    pub fn new(sub_bits: u32, max_value: u64) -> Self {
        assert!(sub_bits <= 16, "sub_bits above 16 wastes memory");
        assert!(max_value > 0, "max_value must be positive");
        let buckets = index_for(max_value, sub_bits) + 1;
        let counts = (0..buckets).map(|_| AtomicU64::new(0)).collect();
        Self {
            sub_bits,
            max_value,
            counts,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one value (clamped to the configured cap). Lock-free: one
    /// bucket increment plus the sum/count counters.
    pub fn record(&self, value: u64) {
        let v = value.min(self.max_value);
        self.counts[index_for(v, self.sub_bits)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded (clamped) values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The relative quantile-error bound, `2^-sub_bits`.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.sub_bits) as f64
    }

    /// A point-in-time copy of the whole distribution (taken off the hot
    /// path — e.g. by the `/metrics` renderer).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            sub_bits: self.sub_bits,
            max_value: self.max_value,
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            count,
        }
    }

    /// Convenience: the `q`-quantile of a fresh snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// An immutable copy of a [`Histogram`]'s buckets.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    sub_bits: u32,
    max_value: u64,
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl HistogramSnapshot {
    /// Total values in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of values in the snapshot.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The `q`-quantile (0 < q ≤ 1) as the inclusive upper bound of the
    /// bucket holding the rank — within `2^-sub_bits` relative error of the
    /// true order statistic. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound(idx, self.sub_bits).min(self.max_value);
            }
        }
        self.max_value
    }

    /// How many recorded values are ≤ `value`. Exact whenever `value` falls
    /// on a bucket boundary — in particular for any `value < 2^sub_bits`,
    /// where every bucket holds a single integer.
    pub fn count_le(&self, value: u64) -> u64 {
        let mut total = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            if upper_bound(idx, self.sub_bits) > value {
                break;
            }
            total += c;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn indexes_round_trip_bucket_bounds() {
        for sub_bits in [0, 1, 3, 5, 8] {
            let mut prev_ub = None;
            for idx in 0..index_for(1 << 20, sub_bits) {
                let ub = upper_bound(idx, sub_bits);
                assert_eq!(index_for(ub, sub_bits), idx, "ub of bucket {idx}");
                if let Some(p) = prev_ub {
                    assert_eq!(
                        index_for(p + 1, sub_bits),
                        idx,
                        "buckets are contiguous at {idx}"
                    );
                    assert!(ub > p, "upper bounds increase");
                }
                prev_ub = Some(ub);
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new(5, 1 << 20);
        for v in 0..32 {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..32 {
            assert_eq!(snap.count_le(v), v + 1, "count_le({v})");
        }
    }

    /// Quantiles of a known distribution stay within the advertised
    /// `2^-sub_bits` relative error bound.
    #[test]
    fn quantile_error_is_bounded() {
        let sub_bits = 5;
        let h = Histogram::new(sub_bits, 1 << 40);
        // 1..=100_000 — the true q-quantile is q * 100_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let truth = (q * 100_000.0).ceil();
            let got = snap.quantile(q) as f64;
            assert!(
                got >= truth,
                "q={q}: bucket upper bound {got} below true {truth}"
            );
            let rel = (got - truth) / truth;
            assert!(
                rel <= h.relative_error() + 1e-12,
                "q={q}: relative error {rel} exceeds {}",
                h.relative_error()
            );
        }
        assert_eq!(snap.count(), 100_000);
        assert_eq!(snap.sum(), (1..=100_000u64).sum::<u64>());
    }

    #[test]
    fn values_above_cap_clamp_into_top_bucket() {
        let h = Histogram::new(4, 1000);
        h.record(u64::MAX);
        h.record(5);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1005);
        assert!(h.quantile(1.0) <= 1000);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(5, 1000);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().count(), 0);
    }

    /// Concurrent writers never lose a recording and the snapshot totals
    /// reconcile (bucket sum == count).
    #[test]
    fn concurrent_recording_reconciles() {
        let h = Arc::new(Histogram::new(5, 1 << 30));
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i + 1);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), threads * per_thread);
        assert_eq!(h.count(), threads * per_thread);
        assert_eq!(
            snap.sum(),
            (1..=threads * per_thread).sum::<u64>(),
            "no increment lost"
        );
    }
}
