//! Per-request lifecycle timeline against a monotonic clock.
//!
//! One [`Timeline`] lives inside a connection's request state. It is started
//! when the first byte of a request arrives and marked as the request moves
//! through the pipeline stages. Marks are nanosecond offsets from the start
//! instant — recording a mark is a `Instant::elapsed` plus one array store,
//! no allocation.

use std::time::Instant;

/// Request lifecycle stages, in pipeline order. Each stage's duration is
/// the gap from the previous mark (or the start, for the first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Request head (method/target/headers) fully parsed.
    HeadParse = 0,
    /// Request body fully read and decoded.
    Body = 1,
    /// Rows handed to the batcher queue.
    Enqueue = 2,
    /// Scores came back from the batch worker.
    Score = 3,
    /// Response bytes fully flushed to the socket.
    Flush = 4,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 5;

/// All stages in pipeline order, paired with short lowercase names for
/// metric labels and slow-query log fields.
pub const STAGES: [(Stage, &str); STAGE_COUNT] = [
    (Stage::HeadParse, "head_parse"),
    (Stage::Body, "body"),
    (Stage::Enqueue, "enqueue"),
    (Stage::Score, "score"),
    (Stage::Flush, "flush"),
];

impl Stage {
    /// Short lowercase name, e.g. for metric labels (`stage="head_parse"`).
    pub fn name(self) -> &'static str {
        STAGES[self as usize].1
    }
}

const UNSET: u64 = u64::MAX;

/// Nanosecond-offset marks for one request's lifecycle.
#[derive(Debug, Clone)]
pub struct Timeline {
    start: Option<Instant>,
    marks: [u64; STAGE_COUNT],
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// An idle timeline; call [`Timeline::start`] at the first request byte.
    pub fn new() -> Self {
        Self {
            start: None,
            marks: [UNSET; STAGE_COUNT],
        }
    }

    /// Starts (or restarts, for keep-alive reuse) the timeline now,
    /// clearing all marks.
    pub fn start(&mut self) {
        self.start = Some(Instant::now());
        self.marks = [UNSET; STAGE_COUNT];
    }

    /// Whether [`Timeline::start`] has been called since the last reset.
    pub fn is_started(&self) -> bool {
        self.start.is_some()
    }

    /// Records `stage` as completed now. No-op if not started.
    pub fn mark(&mut self, stage: Stage) {
        if let Some(start) = self.start {
            self.marks[stage as usize] = start.elapsed().as_nanos() as u64;
        }
    }

    /// Offset of `stage` from the start, in nanoseconds, if marked.
    pub fn offset_ns(&self, stage: Stage) -> Option<u64> {
        let m = self.marks[stage as usize];
        (m != UNSET).then_some(m)
    }

    /// Duration of `stage` itself: the gap from the latest earlier mark
    /// (or the start) to this stage's mark. `None` if the stage was never
    /// reached. Skipped stages (e.g. `Enqueue`/`Score` on a `/healthz`
    /// request) don't distort later gaps — they are simply absent.
    pub fn stage_ns(&self, stage: Stage) -> Option<u64> {
        let end = self.offset_ns(stage)?;
        let prev = self.marks[..stage as usize]
            .iter()
            .filter(|&&m| m != UNSET)
            .max()
            .copied()
            .unwrap_or(0);
        Some(end.saturating_sub(prev))
    }

    /// Total elapsed nanoseconds from start to the last mark (0 if no
    /// marks were recorded).
    pub fn total_ns(&self) -> u64 {
        self.marks
            .iter()
            .filter(|&&m| m != UNSET)
            .max()
            .copied()
            .unwrap_or(0)
    }

    /// Clears the timeline back to idle.
    pub fn reset(&mut self) {
        self.start = None;
        self.marks = [UNSET; STAGE_COUNT];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_are_monotonic_offsets() {
        let mut t = Timeline::new();
        assert!(!t.is_started());
        t.start();
        t.mark(Stage::HeadParse);
        t.mark(Stage::Body);
        t.mark(Stage::Enqueue);
        t.mark(Stage::Score);
        t.mark(Stage::Flush);
        let mut prev = 0;
        for (stage, _) in STAGES {
            let off = t.offset_ns(stage).expect("marked");
            assert!(off >= prev, "{stage:?} offset went backwards");
            prev = off;
        }
        assert_eq!(t.total_ns(), t.offset_ns(Stage::Flush).unwrap());
    }

    #[test]
    fn stage_durations_bridge_skipped_stages() {
        let mut t = Timeline::new();
        t.start();
        t.mark(Stage::HeadParse);
        // /healthz-style request: no body, no batch, straight to flush.
        t.mark(Stage::Flush);
        assert!(t.stage_ns(Stage::Body).is_none());
        assert!(t.stage_ns(Stage::Score).is_none());
        let head = t.offset_ns(Stage::HeadParse).unwrap();
        let flush = t.offset_ns(Stage::Flush).unwrap();
        assert_eq!(t.stage_ns(Stage::Flush), Some(flush - head));
    }

    #[test]
    fn unstarted_timeline_ignores_marks() {
        let mut t = Timeline::new();
        t.mark(Stage::Flush);
        assert_eq!(t.offset_ns(Stage::Flush), None);
        assert_eq!(t.total_ns(), 0);
    }

    #[test]
    fn restart_clears_previous_marks() {
        let mut t = Timeline::new();
        t.start();
        t.mark(Stage::Flush);
        t.start();
        assert_eq!(t.offset_ns(Stage::Flush), None);
        t.reset();
        assert!(!t.is_started());
    }

    #[test]
    fn stage_names_cover_all_variants() {
        let names: Vec<_> = STAGES.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, ["head_parse", "body", "enqueue", "score", "flush"]);
        assert_eq!(Stage::Score.name(), "score");
    }
}
