//! Named instruments and Prometheus text exposition.
//!
//! The registry is only locked when an instrument is registered or when a
//! snapshot is rendered; recording goes straight through `Arc`s to the
//! atomics and never touches the registry lock.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSnapshot, QUANTILES};

/// A monotonically increasing counter (`u64`, relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A free-standing counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that can move both ways (`i64`, relaxed atomics).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A free-standing gauge (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge to `value`.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram { hist: Arc<Histogram>, scale: f64 },
}

struct Entry {
    name: &'static str,
    help: &'static str,
    /// `label="value"` pairs rendered inside `{}`; empty for unlabeled.
    labels: Vec<(&'static str, String)>,
    instrument: Instrument,
}

/// Names instruments and renders them in Prometheus text exposition format.
///
/// Registering the same `(name, labels)` twice returns the existing
/// instrument, so independent subsystems can share a series safely.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        write!(f, "Registry({n} entries)")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, Vec::new())
    }

    /// Registers (or finds) a counter with label pairs.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Instrument::Counter(c) = &e.instrument {
                    return Arc::clone(c);
                }
                panic!("metric {name} already registered with a different type");
            }
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry {
            name,
            help,
            labels,
            instrument: Instrument::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, Vec::new())
    }

    /// Registers (or finds) a gauge with label pairs.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Gauge> {
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Instrument::Gauge(g) = &e.instrument {
                    return Arc::clone(g);
                }
                panic!("metric {name} already registered with a different type");
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry {
            name,
            help,
            labels,
            instrument: Instrument::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Registers (or finds) an unlabeled histogram. `scale` multiplies
    /// recorded integers into the exported unit (e.g. `1e-9` turns stored
    /// nanoseconds into exported seconds).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        sub_bits: u32,
        max_value: u64,
        scale: f64,
    ) -> Arc<Histogram> {
        self.histogram_with(name, help, Vec::new(), sub_bits, max_value, scale)
    }

    /// Registers (or finds) a histogram with label pairs.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        sub_bits: u32,
        max_value: u64,
        scale: f64,
    ) -> Arc<Histogram> {
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Instrument::Histogram { hist, .. } = &e.instrument {
                    return Arc::clone(hist);
                }
                panic!("metric {name} already registered with a different type");
            }
        }
        let h = Arc::new(Histogram::new(sub_bits, max_value));
        entries.push(Entry {
            name,
            help,
            labels,
            instrument: Instrument::Histogram {
                hist: Arc::clone(&h),
                scale,
            },
        });
        h
    }

    /// Renders every registered instrument in Prometheus text exposition
    /// format (`text/plain; version=0.0.4`). Histograms are rendered as
    /// summaries: one `{quantile="..."}` line per p50/p90/p99/p999 plus
    /// `_sum` and `_count`. Entries sharing a name (label variants) are
    /// grouped under one `# HELP`/`# TYPE` header, in registration order.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = String::with_capacity(entries.len() * 96);
        let mut rendered: Vec<&'static str> = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            if rendered.contains(&e.name) {
                continue;
            }
            rendered.push(e.name);
            let type_str = match e.instrument {
                Instrument::Counter(_) => "counter",
                Instrument::Gauge(_) => "gauge",
                Instrument::Histogram { .. } => "summary",
            };
            out.push_str("# HELP ");
            out.push_str(e.name);
            out.push(' ');
            out.push_str(e.help);
            out.push_str("\n# TYPE ");
            out.push_str(e.name);
            out.push(' ');
            out.push_str(type_str);
            out.push('\n');
            for variant in entries[i..].iter().filter(|v| v.name == e.name) {
                render_entry(&mut out, variant);
            }
        }
        out
    }
}

fn render_labels(out: &mut String, labels: &[(&'static str, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

/// Formats `v` the way Prometheus clients do: integers without a decimal
/// point, everything else with enough digits to round-trip.
fn fmt_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v}");
        s
    }
}

fn render_entry(out: &mut String, e: &Entry) {
    match &e.instrument {
        Instrument::Counter(c) => {
            out.push_str(e.name);
            render_labels(out, &e.labels, None);
            out.push(' ');
            out.push_str(&c.get().to_string());
            out.push('\n');
        }
        Instrument::Gauge(g) => {
            out.push_str(e.name);
            render_labels(out, &e.labels, None);
            out.push(' ');
            out.push_str(&g.get().to_string());
            out.push('\n');
        }
        Instrument::Histogram { hist, scale } => {
            let snap: HistogramSnapshot = hist.snapshot();
            for q in QUANTILES {
                out.push_str(e.name);
                let qs = fmt_float(q);
                render_labels(out, &e.labels, Some(("quantile", &qs)));
                out.push(' ');
                out.push_str(&fmt_float(snap.quantile(q) as f64 * scale));
                out.push('\n');
            }
            out.push_str(e.name);
            out.push_str("_sum");
            render_labels(out, &e.labels, None);
            out.push(' ');
            out.push_str(&fmt_float(snap.sum() as f64 * scale));
            out.push('\n');
            out.push_str(e.name);
            out.push_str("_count");
            render_labels(out, &e.labels, None);
            out.push(' ');
            out.push_str(&snap.count().to_string());
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Concurrent increments through independently-held Arcs never lose an
    /// update, and re-registration returns the same instrument.
    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let reg = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 50_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("test_total", "test");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(
            reg.counter("test_total", "test").get(),
            threads * per_thread
        );
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("depth", "queue depth");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn reregistration_shares_the_series() {
        let reg = Registry::new();
        let a = reg.counter_with("c", "h", vec![("shard", "0".into())]);
        let b = reg.counter_with("c", "h", vec![("shard", "0".into())]);
        let other = reg.counter_with("c", "h", vec![("shard", "1".into())]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(other.get(), 0);
    }

    /// Golden exposition test: exact expected output, byte for byte.
    #[test]
    fn prometheus_exposition_golden() {
        let reg = Registry::new();
        let c = reg.counter("hics_requests_total", "Requests served.");
        c.add(42);
        let g = reg.gauge("hics_connections_active", "Open connections.");
        g.set(3);
        let b0 = reg.counter_with(
            "hics_reactor_bytes_in_total",
            "Bytes read per reactor.",
            vec![("reactor", "0".into())],
        );
        b0.add(100);
        let b1 = reg.counter_with(
            "hics_reactor_bytes_in_total",
            "Bytes read per reactor.",
            vec![("reactor", "1".into())],
        );
        b1.add(200);
        // sub_bits=8 keeps small integers exact so quantiles are literal.
        let h = reg.histogram("hics_batch_size", "Rows per scored batch.", 8, 1 << 20, 1.0);
        for _ in 0..9 {
            h.record(10);
        }
        h.record(100);
        let expected = "\
# HELP hics_requests_total Requests served.
# TYPE hics_requests_total counter
hics_requests_total 42
# HELP hics_connections_active Open connections.
# TYPE hics_connections_active gauge
hics_connections_active 3
# HELP hics_reactor_bytes_in_total Bytes read per reactor.
# TYPE hics_reactor_bytes_in_total counter
hics_reactor_bytes_in_total{reactor=\"0\"} 100
hics_reactor_bytes_in_total{reactor=\"1\"} 200
# HELP hics_batch_size Rows per scored batch.
# TYPE hics_batch_size summary
hics_batch_size{quantile=\"0.5\"} 10
hics_batch_size{quantile=\"0.9\"} 10
hics_batch_size{quantile=\"0.99\"} 100
hics_batch_size{quantile=\"0.999\"} 100
hics_batch_size_sum 190
hics_batch_size_count 10
";
        assert_eq!(reg.render_prometheus(), expected);
    }

    #[test]
    fn histogram_scale_converts_units() {
        let reg = Registry::new();
        let h = reg.histogram("lat_seconds", "Latency.", 8, 1 << 30, 1e-9);
        h.record(1_000); // 1000 ns = 1e-6 s, exact under sub_bits=8? 1000 > 511 -> binned
        let text = reg.render_prometheus();
        assert!(text.contains("lat_seconds_count 1"), "{text}");
        assert!(text.contains("lat_seconds_sum 0.000001"), "{text}");
    }
}
