//! End-to-end quality tests: the headline claims of the paper, verified on
//! small-but-real instances of the synthetic workload.

use hics::prelude::*;

/// Reduced-budget paper parameters so the tests stay fast in CI.
fn quick_params(seed: u64) -> HicsParams {
    let mut p = HicsParams::paper_defaults().with_seed(seed);
    p.search.m = 30;
    p.search.candidate_cutoff = 80;
    p.search.top_k = 30;
    p
}

fn full_space_lof(data: &Dataset, k: usize) -> Vec<f64> {
    let dims: Vec<usize> = (0..data.d()).collect();
    Lof::with_k(k).scores(data, &dims)
}

#[test]
fn hics_detects_planted_outliers_with_high_auc() {
    let g = SyntheticConfig::new(700, 10).with_seed(101).generate();
    let result = Hics::new(quick_params(101)).run(&g.dataset);
    let auc = roc_auc(&result.scores, &g.labels);
    assert!(
        auc > 0.85,
        "HiCS AUC {auc} below expectation on planted data"
    );
}

#[test]
fn hics_beats_full_space_lof_in_high_dimensions() {
    // The Fig. 4 core claim: as irrelevant attributes accumulate, full-space
    // LOF degrades toward randomness while HiCS keeps finding the planted
    // subspaces.
    let g = SyntheticConfig::new(500, 25).with_seed(102).generate();
    let hics_auc = roc_auc(
        &Hics::new(quick_params(102)).run(&g.dataset).scores,
        &g.labels,
    );
    let lof_auc = roc_auc(&full_space_lof(&g.dataset, 10), &g.labels);
    assert!(
        hics_auc > lof_auc,
        "HiCS ({hics_auc}) should beat full-space LOF ({lof_auc}) at D=25"
    );
    assert!(hics_auc > 0.8, "HiCS AUC {hics_auc} too low");
}

#[test]
fn hics_beats_random_subspaces() {
    let g = SyntheticConfig::new(500, 20).with_seed(103).generate();
    let hics_auc = roc_auc(
        &Hics::new(quick_params(103)).run(&g.dataset).scores,
        &g.labels,
    );
    let rand_scores = RandSubMethod {
        params: RandomSubspacesParams {
            num_subspaces: 30,
            seed: 103,
        },
        lof_k: 10,
        max_threads: hics::outlier::parallel::available_threads(),
    }
    .rank(&g.dataset);
    let rand_auc = roc_auc(&rand_scores, &g.labels);
    assert!(
        hics_auc > rand_auc,
        "HiCS ({hics_auc}) should beat RANDSUB ({rand_auc})"
    );
}

#[test]
fn pca_fails_as_preprocessing_for_outlier_ranking() {
    // Section V-A: "PCA fails as pre-processing technique for outlier
    // ranking … AUC values close to 50%". With subspace outliers spread
    // across blocks, variance-maximising projections carry little signal.
    let g = SyntheticConfig::new(500, 20).with_seed(104).generate();
    let hics_auc = roc_auc(
        &Hics::new(quick_params(104)).run(&g.dataset).scores,
        &g.labels,
    );
    let pca_auc = roc_auc(&PcaLofMethod::half(10).rank(&g.dataset), &g.labels);
    assert!(
        hics_auc > pca_auc + 0.1,
        "HiCS ({hics_auc}) should clearly beat PCA+LOF ({pca_auc})"
    );
}

#[test]
fn search_recovers_majority_of_planted_blocks() {
    let g = SyntheticConfig::new(600, 15).with_seed(105).generate();
    let mut p = quick_params(105).search;
    p.top_k = 40;
    let found = SubspaceSearch::new(p).run(&g.dataset);
    // For each planted block, some retained subspace should be contained in
    // it (the search sees within-block correlation).
    let mut hit = 0;
    for block in &g.planted_subspaces {
        if found
            .iter()
            .any(|s| s.subspace.dims().all(|d| block.contains(&d)))
        {
            hit += 1;
        }
    }
    assert!(
        hit * 2 >= g.planted_subspaces.len(),
        "only {hit}/{} blocks recovered",
        g.planted_subspaces.len()
    );
}

#[test]
fn both_statistical_variants_work() {
    // Fig. 7/8 claim: HiCS_WT and HiCS_KS both achieve good quality.
    let g = SyntheticConfig::new(500, 10).with_seed(106).generate();
    for test in [StatTest::WelchT, StatTest::KolmogorovSmirnov] {
        let mut p = quick_params(106);
        p.search.test = test;
        let auc = roc_auc(&Hics::new(p).run(&g.dataset).scores, &g.labels);
        assert!(auc > 0.8, "{} variant AUC {auc} too low", test.name());
    }
}

#[test]
fn trivial_outlier_detected_as_by_product() {
    // Section III-B: "our subspace search can detect trivial outliers as a
    // by-product" — o1 of toy dataset B is extreme in s2 alone, and LOF in
    // the selected 2-d subspace still ranks it on top.
    let b = toy::fig2_dataset_b(800, 3);
    let mut p = quick_params(3);
    p.search.top_k = 5;
    let result = Hics::new(p).run(&b.dataset);
    let top = result.top_outliers(2);
    assert!(
        top.contains(&b.outliers[0]) && top.contains(&b.outliers[1]),
        "expected o1/o2 {:?} in top-2, got {top:?}",
        b.outliers
    );
}
