//! Reproducibility and persistence: seeded determinism across thread
//! counts, and CSV round-trips through the full pipeline.

use hics::prelude::*;

#[test]
fn full_pipeline_is_deterministic_across_thread_counts() {
    let g = SyntheticConfig::new(300, 8).with_seed(301).generate();
    let mut p = HicsParams::paper_defaults().with_seed(301);
    p.search.m = 20;
    p.search.candidate_cutoff = 40;
    p.search.top_k = 10;
    p.search.max_threads = 1;
    let a = Hics::new(p).run(&g.dataset);
    p.search.max_threads = 8;
    let b = Hics::new(p).run(&g.dataset);
    assert_eq!(a.subspaces, b.subspaces);
    assert_eq!(a.scores, b.scores);
}

#[test]
fn different_seeds_change_the_monte_carlo_estimates() {
    let g = SyntheticConfig::new(300, 8).with_seed(302).generate();
    let mut p = HicsParams::paper_defaults();
    p.search.m = 20;
    p.search.candidate_cutoff = 40;
    p.search.top_k = 10;
    let a = Hics::new(p.with_seed(1)).run(&g.dataset);
    let b = Hics::new(p.with_seed(2)).run(&g.dataset);
    let ca: Vec<f64> = a.subspaces.iter().map(|s| s.contrast).collect();
    let cb: Vec<f64> = b.subspaces.iter().map(|s| s.contrast).collect();
    assert_ne!(ca, cb, "different seeds must perturb contrast estimates");
}

#[test]
fn csv_roundtrip_preserves_pipeline_results() {
    use hics::data::csv;
    let g = SyntheticConfig::new(200, 6).with_seed(303).generate();
    let mut buf = Vec::new();
    csv::write_csv(&mut buf, &g.dataset, Some(&g.labels)).unwrap();
    let parsed = csv::read_csv(&buf[..], true, true).unwrap();
    assert_eq!(parsed.dataset, g.dataset);
    assert_eq!(parsed.labels.as_deref(), Some(&g.labels[..]));

    let mut p = HicsParams::paper_defaults().with_seed(303);
    p.search.m = 15;
    p.search.candidate_cutoff = 30;
    p.search.top_k = 10;
    let from_mem = Hics::new(p).run(&g.dataset);
    let from_csv = Hics::new(p).run(&parsed.dataset);
    assert_eq!(from_mem.scores, from_csv.scores);
}

#[test]
fn uci_proxies_are_stable_fixtures() {
    // The real-world experiment must be repeatable: the proxy generators
    // are pure functions of (dataset, seed, scale).
    for proxy in UciProxy::ALL {
        let a = proxy.generate_scaled(7, 0.1);
        let b = proxy.generate_scaled(7, 0.1);
        assert_eq!(a.dataset, b.dataset, "{:?} not deterministic", proxy);
        assert_eq!(a.labels, b.labels);
    }
}

#[test]
fn normalization_is_idempotent() {
    let g = SyntheticConfig::new(150, 5).with_seed(304).generate();
    let mut once = g.dataset.clone();
    once.normalize_min_max();
    let mut twice = once.clone();
    twice.normalize_min_max();
    for j in 0..once.d() {
        for i in 0..once.n() {
            assert!((once.value(i, j) - twice.value(i, j)).abs() < 1e-12);
        }
    }
}
