//! Tests of the paper's first contribution: the decoupling of subspace
//! search from outlier ranking. Any scorer must plug into the pipeline and
//! the search output must be reusable across scorers.

use hics::prelude::*;

fn quick_params(seed: u64) -> HicsParams {
    let mut p = HicsParams::paper_defaults().with_seed(seed);
    p.search.m = 25;
    p.search.candidate_cutoff = 60;
    p.search.top_k = 20;
    p
}

/// A custom scorer a downstream user might write: distance to the subspace
/// centroid (a crude global density proxy).
struct CentroidDistance;

impl SubspaceScorer for CentroidDistance {
    fn score_subspace(&self, data: &Dataset, dims: &[usize]) -> Vec<f64> {
        let n = data.n();
        let centroid: Vec<f64> = dims
            .iter()
            .map(|&j| data.col(j).iter().sum::<f64>() / n as f64)
            .collect();
        (0..n)
            .map(|i| {
                dims.iter()
                    .zip(&centroid)
                    .map(|(&j, c)| {
                        let d = data.value(i, j) - c;
                        d * d
                    })
                    .sum::<f64>()
                    .sqrt()
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "centroid-distance"
    }
}

#[test]
fn knn_scorer_is_a_drop_in_replacement_for_lof() {
    let g = SyntheticConfig::new(500, 10).with_seed(201).generate();
    let hics = Hics::new(quick_params(201));
    let with_lof = hics.run(&g.dataset);
    let with_knn = hics.run_with_scorer(&g.dataset, &KnnScorer::new(10));
    // Same subspaces (the search is decoupled from the scorer).
    assert_eq!(with_lof.subspaces, with_knn.subspaces);
    // Both instantiations detect the planted outliers well.
    let auc_lof = roc_auc(&with_lof.scores, &g.labels);
    let auc_knn = roc_auc(&with_knn.scores, &g.labels);
    assert!(auc_lof > 0.8, "LOF instantiation AUC {auc_lof}");
    assert!(auc_knn > 0.8, "kNN instantiation AUC {auc_knn}");
}

#[test]
fn user_defined_scorer_plugs_in() {
    let g = SyntheticConfig::new(300, 8).with_seed(202).generate();
    let result = Hics::new(quick_params(202)).run_with_scorer(&g.dataset, &CentroidDistance);
    assert_eq!(result.scores.len(), 300);
    assert!(result.scores.iter().all(|s| s.is_finite()));
}

#[test]
fn subspace_lists_are_reusable_across_scorers() {
    let g = SyntheticConfig::new(300, 8).with_seed(203).generate();
    let subspaces = SubspaceSearch::new(quick_params(203).search).run(&g.dataset);
    let dims: Vec<Vec<usize>> = subspaces.iter().map(|s| s.subspace.to_vec()).collect();
    let lof = score_and_aggregate(&g.dataset, &dims, &Lof::with_k(10), Aggregation::Average, 8);
    let knn = score_and_aggregate(
        &g.dataset,
        &dims,
        &KnnScorer::new(10),
        Aggregation::Average,
        8,
    );
    assert_eq!(lof.len(), knn.len());
    assert_ne!(lof, knn, "different scorers must produce different scores");
}

#[test]
fn aggregation_modes_differ_but_both_rank_outliers() {
    let g = SyntheticConfig::new(400, 8).with_seed(204).generate();
    let mut avg_params = quick_params(204);
    avg_params.aggregation = Aggregation::Average;
    let mut max_params = quick_params(204);
    max_params.aggregation = Aggregation::Max;
    let avg = Hics::new(avg_params).run(&g.dataset);
    let max = Hics::new(max_params).run(&g.dataset);
    assert_ne!(avg.scores, max.scores);
    let auc_avg = roc_auc(&avg.scores, &g.labels);
    let auc_max = roc_auc(&max.scores, &g.labels);
    assert!(auc_avg > 0.75, "average aggregation AUC {auc_avg}");
    assert!(auc_max > 0.6, "max aggregation AUC {auc_max}");
}

#[test]
fn search_output_feeds_competitor_ranking_stage() {
    // The decoupling works in the other direction too: HiCS subspaces can
    // be consumed by the generic multi-subspace ranking used for Enclus/RIS.
    let g = SyntheticConfig::new(300, 8).with_seed(205).generate();
    let subspaces = SubspaceSearch::new(quick_params(205).search).run(&g.dataset);
    let dims: Vec<Vec<usize>> = subspaces.iter().map(|s| s.subspace.to_vec()).collect();
    let per = score_subspaces(&g.dataset, &dims, &Lof::with_k(10), 8);
    assert_eq!(per.len(), dims.len());
    let agg = aggregate_scores(&per, Aggregation::Average);
    let auc = roc_auc(&agg, &g.labels);
    assert!(auc > 0.8, "decoupled rank stage AUC {auc}");
}
