//! Property-based tests over the core data structures and invariants,
//! using proptest-generated inputs.

use hics::prelude::*;
use proptest::prelude::*;

/// Strategy: a vector of finite, reasonably sized f64 scores.
fn scores_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auc_is_bounded_and_flip_symmetric(
        scores in scores_strategy(60),
        flip_idx in prop::collection::vec(any::<bool>(), 60),
    ) {
        let labels: Vec<bool> = scores
            .iter()
            .zip(flip_idx.iter().cycle())
            .map(|(_, &f)| f)
            .collect();
        let n_pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let auc = roc_auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&auc));
        // Negating scores mirrors the AUC around 1/2.
        let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
        let auc_neg = roc_auc(&neg, &labels);
        prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(sample in scores_strategy(50)) {
        let ecdf = hics::stats::Ecdf::new(&sample);
        let mut xs = sample.clone();
        xs.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for &x in &xs {
            let v = ecdf.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        prop_assert_eq!(ecdf.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn ks_distance_is_a_pseudometric(
        a in scores_strategy(40),
        b in scores_strategy(40),
    ) {
        let ea = hics::stats::Ecdf::new(&a);
        let eb = hics::stats::Ecdf::new(&b);
        let dab = ea.ks_distance(&eb);
        prop_assert!((0.0..=1.0).contains(&dab));
        // Symmetry and identity.
        prop_assert!((dab - eb.ks_distance(&ea)).abs() < 1e-12);
        prop_assert!(ea.ks_distance(&ea) == 0.0);
    }

    #[test]
    fn welch_p_value_valid_and_symmetric(
        a in scores_strategy(40),
        b in scores_strategy(40),
    ) {
        let r1 = hics::stats::welch_t_test(&a, &b);
        let r2 = hics::stats::welch_t_test(&b, &a);
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        prop_assert!((r1.t + r2.t).abs() < 1e-9);
    }

    #[test]
    fn aggregation_average_bounded_by_max(
        rows in prop::collection::vec(
            prop::collection::vec(0.0..100.0f64, 10),
            1..6,
        ),
    ) {
        let avg = aggregate_scores(&rows, Aggregation::Average);
        let max = aggregate_scores(&rows, Aggregation::Max);
        for (a, m) in avg.iter().zip(&max) {
            prop_assert!(a <= m);
        }
    }

    #[test]
    fn subspace_join_grows_by_exactly_one(
        dims_a in prop::collection::btree_set(0usize..30, 2..5),
        extra_a in 30usize..40,
        extra_b in 40usize..50,
    ) {
        // Two subspaces sharing the prefix `dims_a`, differing in the last
        // attribute, must join into prefix + both extras.
        let mut a: Vec<usize> = dims_a.iter().copied().collect();
        let mut b = a.clone();
        a.push(extra_a);
        b.push(extra_b);
        let sa = Subspace::new(a);
        let sb = Subspace::new(b);
        let joined = sa.apriori_join(&sb).expect("prefixes match");
        prop_assert_eq!(joined.len(), sa.len() + 1);
        prop_assert!(joined.is_superset_of(&sa));
        prop_assert!(joined.is_superset_of(&sb));
    }

    #[test]
    fn midranks_sum_invariant(sample in scores_strategy(60)) {
        let ranks = hics::stats::rank::midranks(&sample);
        let n = sample.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn lof_scores_positive_and_finite_or_inf(
        cols in prop::collection::vec(
            prop::collection::vec(0.0..1.0f64, 30),
            1..4,
        ),
    ) {
        let data = Dataset::from_columns(cols);
        let dims: Vec<usize> = (0..data.d()).collect();
        let scores = Lof::with_k(5).scores(&data, &dims);
        for s in scores {
            prop_assert!(!s.is_nan());
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn precision_recall_consistency(
        scores in scores_strategy(50),
        flips in prop::collection::vec(any::<bool>(), 50),
    ) {
        let labels: Vec<bool> = scores
            .iter()
            .zip(flips.iter().cycle())
            .map(|(_, &f)| f)
            .collect();
        let n_pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(n_pos > 0);
        // precision@n * n == recall@n * n_pos (both count the same hits).
        for n in [1, scores.len() / 2, scores.len()] {
            let n = n.max(1);
            let p = precision_at_n(&scores, &labels, n);
            let r = recall_at_n(&scores, &labels, n);
            let hits_p = p * n.min(scores.len()) as f64;
            let hits_r = r * n_pos as f64;
            prop_assert!((hits_p - hits_r).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn contrast_stays_in_unit_interval_on_random_data(
        seed in 0u64..1000,
        d in 3usize..6,
    ) {
        // Random uniform data: contrast must be a valid average deviation.
        use hics::core::contrast::ContrastEstimator;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let cols: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..120).map(|_| rng.gen()).collect())
            .collect();
        let data = Dataset::from_columns(cols);
        let est = ContrastEstimator::new(
            &data,
            20,
            0.2,
            SliceSizing::PaperRoot,
            StatTest::KolmogorovSmirnov.as_deviation(),
        );
        let c = est.contrast(&Subspace::pair(0, 1), seed);
        prop_assert!((0.0..=1.0).contains(&c));
    }
}
