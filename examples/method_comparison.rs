//! Side-by-side comparison of every method from the paper's evaluation
//! (Fig. 4 in miniature): full-space LOF, HiCS, Enclus, RIS, RANDSUB and
//! both PCA+LOF strategies on one synthetic dataset with planted subspace
//! outliers.
//!
//! ```sh
//! cargo run --release --example method_comparison
//! ```

use hics::eval::report::{Stopwatch, TextTable};
use hics::prelude::*;

fn main() {
    let seed = 77;
    let generated = SyntheticConfig::new(1000, 20).with_seed(seed).generate();
    let data = &generated.dataset;
    println!(
        "dataset: {} x {}, {} planted outliers in blocks {:?}\n",
        data.n(),
        data.d(),
        generated.outlier_count(),
        generated.planted_subspaces
    );

    let hics_params = HicsParams::paper_defaults().with_seed(seed);
    let methods: Vec<Box<dyn OutlierMethod>> = vec![
        Box::new(FullSpaceLof { k: 10 }),
        Box::new(HicsMethod {
            params: hics_params,
        }),
        Box::new(EnclusMethod {
            params: EnclusParams::default(),
            lof_k: 10,
        }),
        Box::new(RisMethod {
            params: RisParams::default(),
            lof_k: 10,
        }),
        Box::new(RandSubMethod {
            params: RandomSubspacesParams {
                num_subspaces: 100,
                seed,
            },
            lof_k: 10,
            max_threads: hics::outlier::parallel::available_threads(),
        }),
        Box::new(PcaLofMethod::half(10)),
        Box::new(PcaLofMethod::fixed10(10)),
    ];

    let mut table = TextTable::with_header(["method", "AUC [%]", "prec@20", "runtime [s]"]);
    for m in &methods {
        let watch = Stopwatch::start();
        let scores = m.rank(data);
        let secs = watch.seconds();
        let auc = 100.0 * roc_auc(&scores, &generated.labels);
        let p = precision_at_n(&scores, &generated.labels, 20);
        table.row([
            m.name().to_string(),
            format!("{auc:.2}"),
            format!("{p:.2}"),
            format!("{secs:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape (paper Fig. 4): HiCS on top; ENCLUS/RIS/RANDSUB");
    println!("competitive but below; PCA variants near 50% (random guessing).");
}
