//! A tour of the contrast machinery on the paper's illustrative datasets:
//! Figure 2 (dataset A vs B) and the Figure 3 XOR counterexample.
//!
//! Shows, for each statistical instantiation (Welch, KS, Mann–Whitney), how
//! the Monte-Carlo contrast separates correlated from uncorrelated
//! subspaces, and why contrast admits no Apriori monotonicity.
//!
//! ```sh
//! cargo run --release --example subspace_explorer
//! ```

use hics::core::contrast::ContrastEstimator;
use hics::eval::report::TextTable;
use hics::prelude::*;

fn contrast_of(data: &Dataset, sub: &Subspace, test: StatTest, seed: u64) -> f64 {
    ContrastEstimator::new(data, 100, 0.1, SliceSizing::PaperRoot, test.as_deviation())
        .contrast(sub, seed)
}

fn main() {
    let n = 1000;
    let a = toy::fig2_dataset_a(n, 1);
    let b = toy::fig2_dataset_b(n, 1);
    let pair = Subspace::pair(0, 1);
    let tests = [
        StatTest::WelchT,
        StatTest::KolmogorovSmirnov,
        StatTest::MannWhitney,
    ];

    println!("== Figure 2: identical marginals, different joint structure ==\n");
    let mut t =
        TextTable::with_header(["deviation test", "dataset A (indep.)", "dataset B (corr.)"]);
    for test in tests {
        t.row([
            test.name().to_string(),
            format!("{:.4}", contrast_of(&a.dataset, &pair, test, 9)),
            format!("{:.4}", contrast_of(&b.dataset, &pair, test, 9)),
        ]);
    }
    println!("{}", t.render());

    // How do the outliers score in dataset B?
    let lof = Lof::with_k(10);
    let scores = lof.scores(&b.dataset, &[0, 1]);
    let o1 = b.outliers[0];
    let o2 = b.outliers[1];
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| scores[y].total_cmp(&scores[x]));
    println!("LOF in the 2-d subspace of dataset B:");
    println!(
        "  trivial outlier o1: rank {} / {n}",
        order.iter().position(|&i| i == o1).unwrap() + 1
    );
    println!(
        "  non-trivial outlier o2: rank {} / {n}\n",
        order.iter().position(|&i| i == o2).unwrap() + 1
    );

    println!("== Figure 3: the XOR counterexample (no monotonicity) ==\n");
    let xor = toy::xor3d(2000, 4);
    let mut t = TextTable::with_header(["subspace", "contrast (KS)"]);
    for dims in [vec![0, 1], vec![0, 2], vec![1, 2], vec![0, 1, 2]] {
        let sub = Subspace::new(dims);
        let c = contrast_of(&xor, &sub, StatTest::KolmogorovSmirnov, 11);
        t.row([sub.to_string(), format!("{c:.4}")]);
    }
    println!("{}", t.render());
    println!("all 2-d projections look uncorrelated while the 3-d joint space");
    println!("is strongly correlated — contrast is not monotone, so the HiCS");
    println!("framework uses a candidate cutoff instead of subset pruning.");
}
