//! Quickstart: generate data with outliers hidden in subspaces, run the full
//! HiCS pipeline, inspect the selected subspaces and the outlier ranking.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hics::prelude::*;

fn main() {
    // 1. A dataset in the paper's style: 1000 objects, 10 attributes,
    //    attributes partitioned into correlated blocks of 2-5 dims, five
    //    non-trivial outliers planted per block.
    let generated = SyntheticConfig::new(1000, 10).with_seed(7).generate();
    let data = &generated.dataset;
    println!(
        "dataset: {} objects x {} attributes, {} planted outliers",
        data.n(),
        data.d(),
        generated.outlier_count()
    );
    println!(
        "planted subspace blocks: {:?}\n",
        generated.planted_subspaces
    );

    // 2. Run HiCS with the paper's default parameters (M = 50, alpha = 0.1,
    //    candidate cutoff 400, Welch t-test, top 100 subspaces, LOF k = 10).
    let params = HicsParams::paper_defaults().with_seed(42);
    let result = Hics::new(params).run(data);

    // 3. The subspace search output: high-contrast projections.
    println!("top high-contrast subspaces:");
    for s in result.subspaces.iter().take(8) {
        println!("  contrast {:.4}  {}", s.contrast, s.subspace);
    }

    // 4. The outlier ranking (Definition 1: LOF averaged over subspaces).
    println!("\ntop-10 ranked outliers (true planted outliers marked *):");
    for &i in &result.top_outliers(10) {
        println!(
            "  object {i:4}  score {:.3} {}",
            result.scores[i],
            if generated.labels[i] { "*" } else { "" }
        );
    }

    // 5. Quality against the planted ground truth.
    let auc = roc_auc(&result.scores, &generated.labels);
    let p10 = precision_at_n(&result.scores, &generated.labels, 10);
    println!("\nROC AUC      = {:.2}%", 100.0 * auc);
    println!("precision@10 = {:.2}", p10);
}
