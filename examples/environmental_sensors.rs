//! The paper's Figure 1 motivation scenario: environmental surveillance.
//!
//! Sensor nodes report air pollution, noise level, humidity, temperature
//! and a few unrelated channels. One node (`outlier1`) misbehaves only in
//! the {air pollution, noise} projection; another (`outlier2`) only in
//! {humidity, temperature}. Neither is visible in any single channel nor in
//! the scattered full space — exactly the "multiple roles" situation HiCS
//! is built for.
//!
//! ```sh
//! cargo run --release --example environmental_sensors
//! ```

use hics::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gaussian helper around the prelude-less rng.
fn gauss(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    hics::data::rng_util::gauss_with(rng, mean, sd).clamp(0.0, 1.0)
}

fn main() {
    let n = 600;
    let mut rng = StdRng::seed_from_u64(2012);

    // Correlated pair 1: air pollution index rises with noise level
    // (traffic drives both). Two regimes: calm and rush-hour.
    let mut pollution = Vec::with_capacity(n);
    let mut noise = Vec::with_capacity(n);
    // Correlated pair 2: humidity falls as temperature rises (weather).
    let mut humidity = Vec::with_capacity(n);
    let mut temperature = Vec::with_capacity(n);
    // Unrelated channels: battery voltage, signal strength and a bank of
    // independent diagnostic registers — the high-dimensional noise that
    // drowns full-space distances (the curse of dimensionality).
    let mut battery = Vec::with_capacity(n);
    let mut signal = Vec::with_capacity(n);
    let extra_channels = 12;
    let mut extras: Vec<Vec<f64>> = (0..extra_channels).map(|_| Vec::with_capacity(n)).collect();

    for _ in 0..n {
        let rush_hour = rng.gen::<f64>() < 0.4;
        let (p_mean, s_mean) = if rush_hour { (0.7, 0.75) } else { (0.25, 0.3) };
        pollution.push(gauss(&mut rng, p_mean, 0.05));
        noise.push(gauss(&mut rng, s_mean, 0.05));

        let t = rng.gen::<f64>() * 0.7 + 0.15;
        temperature.push(gauss(&mut rng, t, 0.02));
        humidity.push(gauss(&mut rng, 0.95 - 0.8 * t, 0.03));

        battery.push(rng.gen::<f64>());
        signal.push(rng.gen::<f64>());
        for ch in &mut extras {
            ch.push(rng.gen::<f64>());
        }
    }

    // outlier1: high pollution at LOW noise — impossible for traffic, yet
    // both values are ordinary on their own.
    let o1 = 100;
    pollution[o1] = 0.7;
    noise[o1] = 0.3;
    // outlier2: high humidity at HIGH temperature — breaks the weather
    // anticorrelation while both marginals stay typical.
    let o2 = 200;
    temperature[o2] = 0.75;
    humidity[o2] = 0.8;

    let mut cols = vec![pollution, noise, humidity, temperature, battery, signal];
    let mut names: Vec<String> = vec![
        "air_pollution".into(),
        "noise_level".into(),
        "humidity".into(),
        "temperature".into(),
        "battery".into(),
        "signal".into(),
    ];
    for (i, ch) in extras.into_iter().enumerate() {
        cols.push(ch);
        names.push(format!("register_{i}"));
    }
    let data = Dataset::from_columns_named(cols, names);

    // Run the full pipeline.
    let mut params = HicsParams::paper_defaults().with_seed(3);
    params.search.top_k = 10;
    let result = Hics::new(params).run(&data);

    println!("high-contrast subspaces (attribute names):");
    let names = data.names();
    for s in result.subspaces.iter().take(5) {
        let dims: Vec<&str> = s.subspace.dims().map(|d| names[d].as_str()).collect();
        println!("  contrast {:.4}  {{{}}}", s.contrast, dims.join(", "));
    }

    let ranking = result.ranking();
    let rank_of = |obj: usize| ranking.iter().position(|&i| i == obj).unwrap() + 1;
    println!(
        "\noutlier1 (pollution/noise violation):   rank {:3} of {n}",
        rank_of(o1)
    );
    println!(
        "outlier2 (humidity/temp violation):     rank {:3} of {n}",
        rank_of(o2)
    );

    // Contrast the subspace ranking with plain full-space LOF.
    let full: Vec<usize> = (0..data.d()).collect();
    let lof_scores = Lof::with_k(10).scores(&data, &full);
    let mut lof_rank: Vec<usize> = (0..n).collect();
    lof_rank.sort_by(|&a, &b| lof_scores[b].total_cmp(&lof_scores[a]));
    let lof_rank_of = |obj: usize| lof_rank.iter().position(|&i| i == obj).unwrap() + 1;
    println!("\nfor comparison, full-space LOF ranks:");
    println!("  outlier1: rank {:3} of {n}", lof_rank_of(o1));
    println!("  outlier2: rank {:3} of {n}", lof_rank_of(o2));

    let labels: Vec<bool> = (0..n).map(|i| i == o1 || i == o2).collect();
    println!(
        "\nAUC: HiCS = {:.1}%, full-space LOF = {:.1}%",
        100.0 * roc_auc(&result.scores, &labels),
        100.0 * roc_auc(&lof_scores, &labels)
    );
}
